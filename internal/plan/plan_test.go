package plan

import (
	"reflect"
	"testing"

	"weaver/internal/wire"
)

// fakeMarkers is an in-memory MarkerReader for planner unit tests.
type fakeMarkers map[string]struct{}

func (f fakeMarkers) set(key, value string, shard int) {
	f[MarkerKey(key, value, shard)] = struct{}{}
}

func (f fakeMarkers) HasValue(key, value string, shard int) bool {
	_, ok := f[MarkerKey(key, value, shard)]
	return ok
}

func eq(key, value string) wire.Where { return wire.Where{Key: key, Op: wire.OpEq, Value: value} }

func TestMarkerKeyDistinct(t *testing.T) {
	keys := map[string]bool{}
	for _, k := range []string{
		MarkerKey("kind", "block", 0),
		MarkerKey("kind", "block", 1),
		MarkerKey("kind", "tx", 0),
		MarkerKey("city", "block", 0),
	} {
		if keys[k] {
			t.Fatalf("duplicate marker key %q", k)
		}
		keys[k] = true
	}
}

func TestBuildPrunesToMarkedShards(t *testing.T) {
	m := fakeMarkers{}
	m.set("kind", "block", 1)
	m.set("kind", "block", 3)
	p := New(4, m)

	pl := p.Build(Query{Wheres: []wire.Where{eq("kind", "block")}})
	if pl.Broadcast {
		t.Fatalf("equality query fell back to broadcast: %q", pl.FallbackReason)
	}
	if want := []int{1, 3}; !reflect.DeepEqual(pl.Shards, want) {
		t.Fatalf("Shards = %v, want %v", pl.Shards, want)
	}
}

func TestBuildConjunctionIntersectsMarkers(t *testing.T) {
	m := fakeMarkers{}
	m.set("kind", "block", 0)
	m.set("kind", "block", 1)
	m.set("city", "nyc", 1)
	m.set("city", "nyc", 2)
	p := New(4, m)

	pl := p.Build(Query{Wheres: []wire.Where{eq("kind", "block"), eq("city", "nyc")}})
	if want := []int{1}; !reflect.DeepEqual(pl.Shards, want) {
		t.Fatalf("conjunction Shards = %v, want %v", pl.Shards, want)
	}
}

func TestBuildEmptyPlanForUnknownValue(t *testing.T) {
	p := New(4, fakeMarkers{})
	pl := p.Build(Query{Wheres: []wire.Where{eq("kind", "nowhere")}})
	if pl.Broadcast || len(pl.Shards) != 0 {
		t.Fatalf("unknown value should plan zero shards, got %+v", pl)
	}
}

func TestBuildBroadcastsWithoutEquality(t *testing.T) {
	m := fakeMarkers{}
	m.set("kind", "block", 2)
	p := New(3, m)

	for _, q := range []Query{
		{Range: true},
		{Wheres: []wire.Where{{Key: "kind", Op: wire.OpGe, Value: "a"}}},
	} {
		pl := p.Build(q)
		if !pl.Broadcast {
			t.Fatalf("query %+v should broadcast", q)
		}
		if want := []int{0, 1, 2}; !reflect.DeepEqual(pl.Shards, want) {
			t.Fatalf("broadcast Shards = %v, want %v", pl.Shards, want)
		}
	}
	// An inequality riding along with an equality still prunes.
	pl := p.Build(Query{Wheres: []wire.Where{
		eq("kind", "block"), {Key: "kind", Op: wire.OpGe, Value: "a"},
	}})
	if pl.Broadcast || !reflect.DeepEqual(pl.Shards, []int{2}) {
		t.Fatalf("mixed conjunction should prune on the equality, got %+v", pl)
	}
}

func TestMatchShardsSkipsContacted(t *testing.T) {
	m := fakeMarkers{}
	m.set("kind", "block", 0)
	m.set("kind", "block", 2)
	p := New(4, m)

	got := p.MatchShards([]wire.Where{eq("kind", "block")}, map[int]struct{}{0: {}})
	if want := []int{2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("MatchShards skip = %v, want %v", got, want)
	}
}

func TestEstimateEqualityUsesDistinct(t *testing.T) {
	m := fakeMarkers{}
	m.set("kind", "block", 0)
	p := New(2, m)
	p.Install(wire.IndexStats{Shard: 0, Keys: []wire.KeyCard{
		{Key: "kind", Distinct: 4, Postings: 100},
	}})

	pl := p.Build(Query{Wheres: []wire.Where{eq("kind", "block")}})
	if pl.EstRows != 25 {
		t.Fatalf("EstRows = %d, want 25 (100 postings / 4 distinct)", pl.EstRows)
	}
	if pl.PerShard[0] != 25 {
		t.Fatalf("PerShard[0] = %d, want 25", pl.PerShard[0])
	}
}

func TestEstimateUnknownWithoutStats(t *testing.T) {
	m := fakeMarkers{}
	m.set("kind", "block", 0)
	m.set("kind", "block", 1)
	p := New(2, m)
	p.Install(wire.IndexStats{Shard: 0, Keys: []wire.KeyCard{
		{Key: "kind", Distinct: 2, Postings: 10},
	}})
	// Shard 1 never published: the total is unknown, the known shard keeps
	// its component.
	pl := p.Build(Query{Wheres: []wire.Where{eq("kind", "block")}})
	if pl.EstRows != -1 {
		t.Fatalf("EstRows = %d, want -1 with a stats-less shard contacted", pl.EstRows)
	}
	if pl.PerShard[0] != 5 || pl.PerShard[1] != -1 {
		t.Fatalf("PerShard = %v, want {0:5 1:-1}", pl.PerShard)
	}
}

func TestEstimateConjunctionTakesNarrowest(t *testing.T) {
	m := fakeMarkers{}
	m.set("kind", "block", 0)
	m.set("city", "nyc", 0)
	p := New(1, m)
	p.Install(wire.IndexStats{Shard: 0, Keys: []wire.KeyCard{
		{Key: "kind", Distinct: 2, Postings: 100},  // est 50
		{Key: "city", Distinct: 50, Postings: 100}, // est 2
	}})
	pl := p.Build(Query{Wheres: []wire.Where{eq("kind", "block"), eq("city", "nyc")}})
	if pl.EstRows != 2 {
		t.Fatalf("EstRows = %d, want 2 (narrowest predicate)", pl.EstRows)
	}
}

func TestEstimateInequalityHistogramOverlap(t *testing.T) {
	card := wire.KeyCard{Key: "v", Distinct: 8, Postings: 80,
		Bounds: []string{"b", "d", "f", "h"}} // depth 20 per bucket
	// v >= "g" overlaps only the last bucket ("f","h"].
	got := estimateWhere(card, wire.Where{Key: "v", Op: wire.OpGe, Value: "g"})
	if got != 20 {
		t.Fatalf("OpGe overlap estimate = %d, want 20", got)
	}
	// v <= "c" overlaps buckets 1 and 2 (lo "" and lo "b").
	got = estimateWhere(card, wire.Where{Key: "v", Op: wire.OpLe, Value: "c"})
	if got != 40 {
		t.Fatalf("OpLe overlap estimate = %d, want 40", got)
	}
	// Unbounded side covers everything, capped at Postings.
	got = estimateWhere(card, wire.Where{Key: "v", Op: wire.OpGe, Value: ""})
	if got != 80 {
		t.Fatalf("unbounded estimate = %d, want 80", got)
	}
}

func TestBroadcastRecordsReason(t *testing.T) {
	p := New(2, fakeMarkers{})
	pl := p.Broadcast(Query{}, "planning disabled")
	if !pl.Broadcast || pl.FallbackReason != "planning disabled" {
		t.Fatalf("Broadcast plan = %+v", pl)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(pl.Shards, want) {
		t.Fatalf("Broadcast shards = %v, want %v", pl.Shards, want)
	}
}
