// Package plan turns cross-shard index queries into explicit execution
// plans: which shards to contact, what to push down, and what the result
// size should be — replacing the gatekeeper's blanket broadcast with
// cost-based scatter (the locality-aware query planning the
// graph-database taxonomy calls the gap between prototype and production
// stores; Weaver's own evaluation shows cross-shard coordination
// dominating read latency, §6).
//
// # Soundness: the value-presence marker catalog
//
// Pruning a shard is only sound if no posting visible at the query's
// snapshot can live there. Under Weaver's write-before-read rule (§4.1) a
// lookup sees timestamp-CONCURRENT writes, so no asynchronously published
// statistic can justify pruning — a transaction in flight right now may
// be adding the match the statistic does not know about. Soundness
// instead comes from monotone value-presence markers in the transactional
// backing store: one marker record per (key, value, shard) triple,
// written by every path that can place an indexed value on a shard —
// the commit path BEFORE the transaction's timestamp is minted, bulk
// ingest and migration under their cluster fences — and never deleted.
//
// The commit-path ordering gives the happens-before chain that makes
// equality pruning sound: marker-write < timestamp-mint for the writer,
// and query-timestamp-mint < catalog-read for the reader, with the
// backing store linearizable. Any transaction whose timestamp can be
// visible at the query snapshot either minted before the query (its
// marker-write finished even earlier, so the catalog read sees it) or
// races the query, in which case the gatekeeper's post-merge marker
// re-check (see Gatekeeper lookup) closes the window: markers that appear
// between planning and the gather trigger a follow-up round to the newly
// marked shards at the same read timestamp, so a racing transaction is
// observed either fully or not at all. Because markers only accrete,
// staleness is one-sided: a marker for a value no vertex carries anymore
// costs one empty-handed shard visit, never a missed match.
//
// # Statistics: estimation only
//
// Per-shard, per-key cardinality statistics (distinct counts plus a small
// equi-depth histogram, published by shards and refreshed synchronously
// under the migration fence) drive the row estimates surfaced through
// EXPLAIN and the estimated-vs-actual error metric. They never influence
// which shards may be skipped.
package plan

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"weaver/internal/wire"
)

// MarkerPrefix is the backing-store key prefix of value-presence markers.
const MarkerPrefix = "ixm/"

// MarkerKey is the backing-store key of the (key, value, shard) marker.
// The delimiter is not escaped: a crafted key/value pair can only merge
// two triples into one marker, which widens the contacted shard set
// (false positive), never narrows it.
func MarkerKey(key, value string, shard int) string {
	return MarkerPrefix + key + "\x00" + value + "\x00" + strconv.Itoa(shard)
}

// MarkerReader answers point queries against the marker catalog. The
// gatekeeper implements it over the backing store with a positive-only
// cache (markers are monotone, so a positive never goes stale; negatives
// must always re-read).
type MarkerReader interface {
	HasValue(key, value string, shard int) bool
}

// Query is one index query as the planner sees it.
type Query struct {
	// Wheres is the predicate conjunction (a legacy single-equality
	// lookup arrives as one OpEq predicate).
	Wheres []wire.Where
	// Range marks the legacy Lo/Hi range form, which carries no equality
	// predicate and therefore broadcasts.
	Range bool
	// Limit is the global result cap (0 = unlimited); recorded in the
	// plan for EXPLAIN.
	Limit int
}

// Plan is the executable outcome: the shard set to contact and the cost
// estimate behind it.
type Plan struct {
	// Shards to contact, ascending. On the broadcast fallback this is
	// every shard.
	Shards []int
	// Broadcast marks the legacy fallback path; FallbackReason says why
	// ("planning disabled", "no equality predicate", ...).
	Broadcast      bool
	FallbackReason string
	// EstRows is the estimated result size before limiting, -1 when no
	// statistics cover the query. PerShard holds the per-shard component
	// (same -1 convention).
	EstRows  int
	PerShard map[int]int
}

// ShardContact is one shard's row in an Explanation.
type ShardContact struct {
	Shard   int
	EstRows int // -1 = no statistics
	Rows    int // vertices returned (after shard-side limit)
	Matched int // shard-local matches before limit (pushed-down queries)
	Scanned int // candidate postings examined (pushed-down queries)
}

// Explanation is the EXPLAIN surface: filled in by the gatekeeper while
// executing a query with an Explain option attached.
type Explanation struct {
	Wheres         []wire.Where
	Limit          int
	Broadcast      bool
	FallbackReason string
	// Shards were contacted; Pruned is how many of the cluster's shards
	// the plan skipped. Rounds counts marker re-check follow-up rounds
	// (0 in the steady state).
	Shards []int
	Pruned int
	Rounds int
	// EstRows (-1 = no statistics) vs ActualRows, the cost-model error
	// surface.
	EstRows    int
	ActualRows int
	// Per-stage timings from the obs clock: plan build (marker catalog +
	// statistics), scatter (issue + gather), merge (sort/dedupe/limit).
	PlanTime    time.Duration
	ScatterTime time.Duration
	MergeTime   time.Duration
	PerShard    []ShardContact
}

// Planner holds one gatekeeper's planning state: the marker catalog
// reader and the per-shard statistics table. Safe for concurrent use.
type Planner struct {
	shards  int
	markers MarkerReader

	mu    sync.RWMutex
	stats []map[string]wire.KeyCard // per shard: key → cardinality
}

// New builds a planner over the given shard count and marker catalog.
func New(shards int, markers MarkerReader) *Planner {
	return &Planner{shards: shards, markers: markers, stats: make([]map[string]wire.KeyCard, shards)}
}

// Install replaces one shard's statistics (from a periodic wire.IndexStats
// publication or the synchronous migration-fence refresh).
func (p *Planner) Install(st wire.IndexStats) {
	if p == nil || st.Shard < 0 || st.Shard >= p.shards {
		return
	}
	m := make(map[string]wire.KeyCard, len(st.Keys))
	for _, k := range st.Keys {
		m[k.Key] = k
	}
	p.mu.Lock()
	p.stats[st.Shard] = m
	p.mu.Unlock()
}

// Broadcast returns the fallback plan contacting every shard, with the
// reason recorded for EXPLAIN and the fallback counter.
func (p *Planner) Broadcast(q Query, reason string) Plan {
	pl := Plan{Broadcast: true, FallbackReason: reason, Shards: make([]int, p.shards)}
	for i := range pl.Shards {
		pl.Shards[i] = i
	}
	p.estimate(q, &pl)
	return pl
}

// Build plans one query: equality predicates are intersected against the
// marker catalog to find the only shards that can hold matches; queries
// without an equality predicate broadcast. The returned shard set may be
// empty — the query's result is then provably empty (subject to the
// caller's marker re-check).
func (p *Planner) Build(q Query) Plan {
	eqs := equalities(q.Wheres)
	if q.Range || len(eqs) == 0 {
		return p.Broadcast(q, "no equality predicate")
	}
	pl := Plan{Shards: p.MatchShards(eqs, nil)}
	p.estimate(q, &pl)
	return pl
}

// MatchShards returns the shards on which EVERY equality predicate has a
// presence marker, ascending, excluding those in skip — the intersection
// that bounds where a conjunction's matches can live (the result set is a
// subset of each predicate's match set). The gatekeeper calls it again
// after the gather, with the already-contacted set as skip, to catch
// markers that appeared while the query was in flight.
func (p *Planner) MatchShards(eqs []wire.Where, skip map[int]struct{}) []int {
	var out []int
	for s := 0; s < p.shards; s++ {
		if _, done := skip[s]; done {
			continue
		}
		all := true
		for _, w := range eqs {
			if !p.markers.HasValue(w.Key, w.Value, s) {
				all = false
				break
			}
		}
		if all {
			out = append(out, s)
		}
	}
	return out
}

// Equalities extracts the equality predicates of a conjunction.
func equalities(ws []wire.Where) []wire.Where {
	var out []wire.Where
	for _, w := range ws {
		if w.Op == wire.OpEq {
			out = append(out, w)
		}
	}
	return out
}

// Equalities is the exported form used by the gatekeeper's re-check.
func Equalities(ws []wire.Where) []wire.Where { return equalities(ws) }

// estimate fills the plan's row estimates from the statistics table: per
// shard, the most selective predicate's estimate (a conjunction returns
// at most its narrowest predicate's rows); -1 when no statistics cover a
// contacted shard.
func (p *Planner) estimate(q Query, pl *Plan) {
	pl.PerShard = make(map[int]int, len(pl.Shards))
	pl.EstRows = 0
	known := true
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, s := range pl.Shards {
		est := p.estimateShard(s, q)
		pl.PerShard[s] = est
		if est < 0 {
			known = false
			continue
		}
		pl.EstRows += est
	}
	if !known {
		pl.EstRows = -1
	}
}

// estimateShard estimates one shard's pre-limit match count, or -1. The
// legacy range form estimates from the histogram of q's first predicate
// key when present. Callers hold p.mu.
func (p *Planner) estimateShard(s int, q Query) int {
	stats := p.stats[s]
	if stats == nil || len(q.Wheres) == 0 {
		return -1
	}
	best := -1
	for _, w := range q.Wheres {
		card, ok := stats[w.Key]
		if !ok {
			continue
		}
		est := estimateWhere(card, w)
		if best < 0 || est < best {
			best = est
		}
	}
	return best
}

// estimateWhere estimates one predicate's match count on one shard from
// its cardinality summary: uniform value spread for equality, equi-depth
// bucket overlap for inequalities.
func estimateWhere(card wire.KeyCard, w wire.Where) int {
	if card.Postings == 0 {
		return 0
	}
	switch w.Op {
	case wire.OpEq:
		if card.Distinct == 0 {
			return 0
		}
		return int((card.Postings + card.Distinct - 1) / card.Distinct)
	default:
		if len(card.Bounds) == 0 {
			return int(card.Postings)
		}
		depth := int(card.Postings) / len(card.Bounds)
		if depth == 0 {
			depth = 1
		}
		// Buckets are (prev, bound] intervals; count those a one-sided
		// predicate can overlap. Empty values inherit the unbounded-side
		// convention, matching shard evaluation.
		overlap := 0
		for i, b := range card.Bounds {
			lo := ""
			if i > 0 {
				lo = card.Bounds[i-1]
			}
			switch w.Op {
			case wire.OpGe, wire.OpGt:
				if w.Value == "" || b >= w.Value {
					overlap++
				}
			case wire.OpLe, wire.OpLt:
				if w.Value == "" || lo <= w.Value {
					overlap++
				}
			default:
				overlap++
			}
		}
		est := overlap * depth
		if est > int(card.Postings) {
			est = int(card.Postings)
		}
		return est
	}
}

// SortShards sorts a shard list ascending in place and returns it (the
// deterministic order plans and explanations report).
func SortShards(shards []int) []int {
	sort.Ints(shards)
	return shards
}
