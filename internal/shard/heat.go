package shard

import (
	"sort"
	"sync"

	"weaver/internal/graph"
)

// Per-vertex heat tracking for online repartitioning (§4.6). Every shard
// scores the vertices it hosts by recent activity: transactional writes,
// node-program visits, and — weighted higher, because they are exactly the
// cost dynamic placement exists to remove — node-program hops that arrived
// from another shard. The cluster's background rebalancer reads the top-K
// hot vertices (HeatTopK), feeds them with their live adjacency through the
// LDG streaming partitioner, and migrates the ones whose placement should
// change. Scores decay geometrically (DecayHeat) so the ranking tracks the
// current workload rather than all-time totals.
const (
	// heatWrite is added per write operation applied to a vertex.
	heatWrite = 1.0
	// heatVisit is added per node-program visit of a vertex.
	heatVisit = 1.0
	// heatRemoteHop is added on top of heatVisit when the visit's hop
	// crossed a shard boundary to get here — the traffic a better
	// placement would make local.
	heatRemoteHop = 2.0
	// heatFloor drops a vertex from the table once decay brings its score
	// below this, bounding the table to recently active vertices.
	heatFloor = 0.05
	// heatMaxEntries hard-caps the table. Periodic decay already bounds it
	// when a rebalancer runs; the cap covers clusters that track heat but
	// never rebalance (Config.RebalanceInterval unset), where churn over
	// many distinct vertices would otherwise grow the map forever.
	heatMaxEntries = 1 << 16
)

// VertexHeat is one vertex's activity score, as reported by HeatTopK.
type VertexHeat struct {
	Vertex graph.VertexID
	Shard  int
	Heat   float64
}

// heatMap is the shard-local score table. It has its own lock (not the
// event loop's state): writes come from the apply worker pool, visits from
// the event loop, and reads from the cluster's rebalancer goroutine.
// Callers batch additions (addMany) so the hot paths pay one acquisition
// per transaction or program batch, not one per operation.
type heatMap struct {
	mu sync.Mutex
	m  map[graph.VertexID]float64
}

func newHeatMap() *heatMap {
	return &heatMap{m: make(map[graph.VertexID]float64)}
}

// addOps credits one transaction's write operations in a single lock
// acquisition.
func (h *heatMap) addOps(ops []graph.Op) {
	if len(ops) == 0 {
		return
	}
	h.mu.Lock()
	for i := range ops {
		h.m[ops[i].Vertex] += heatWrite
	}
	h.pruneLocked()
	h.mu.Unlock()
}

// addMany merges a batch of per-vertex credits (one program batch's visits)
// in a single lock acquisition.
func (h *heatMap) addMany(credits map[graph.VertexID]float64) {
	if len(credits) == 0 {
		return
	}
	h.mu.Lock()
	for v, w := range credits {
		h.m[v] += w
	}
	h.pruneLocked()
	h.mu.Unlock()
}

// pruneLocked enforces heatMaxEntries: one decay pass sheds cold entries;
// if the table is somehow still over cap (that many genuinely hot
// vertices), arbitrary entries are dropped — the score is a heuristic, and
// anything truly hot re-earns its entry on its next access.
func (h *heatMap) pruneLocked() {
	if len(h.m) <= heatMaxEntries {
		return
	}
	for v, w := range h.m {
		w *= 0.5
		if w < heatFloor {
			delete(h.m, v)
		} else {
			h.m[v] = w
		}
	}
	for v := range h.m {
		if len(h.m) <= heatMaxEntries {
			break
		}
		delete(h.m, v)
	}
}

// decay multiplies every score by factor in (0,1), dropping entries that
// fall below heatFloor.
func (h *heatMap) decay(factor float64) {
	h.mu.Lock()
	for v, w := range h.m {
		w *= factor
		if w < heatFloor {
			delete(h.m, v)
		} else {
			h.m[v] = w
		}
	}
	h.mu.Unlock()
}

// topK returns the k hottest vertices, hottest first (ties broken by ID for
// determinism). k <= 0 returns the whole table.
func (h *heatMap) topK(k int, shard int) []VertexHeat {
	h.mu.Lock()
	out := make([]VertexHeat, 0, len(h.m))
	for v, w := range h.m {
		out = append(out, VertexHeat{Vertex: v, Shard: shard, Heat: w})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Heat != out[j].Heat {
			return out[i].Heat > out[j].Heat
		}
		return out[i].Vertex < out[j].Vertex
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// forget drops a vertex from the table (it migrated away; its activity
// belongs to the new home now).
func (h *heatMap) forget(v graph.VertexID) {
	h.mu.Lock()
	delete(h.m, v)
	h.mu.Unlock()
}

// HeatTopK returns this shard's k hottest vertices, hottest first. Safe to
// call from any goroutine.
func (s *Shard) HeatTopK(k int) []VertexHeat {
	return s.heat.topK(k, s.cfg.ID)
}

// DecayHeat multiplies every heat score by factor, dropping vertices whose
// score decays to noise. The cluster rebalancer calls it once per cycle.
func (s *Shard) DecayHeat(factor float64) {
	s.heat.decay(factor)
}

// ForgetHeat drops one vertex's heat (after it migrates away).
func (s *Shard) ForgetHeat(v graph.VertexID) {
	s.heat.forget(v)
}
