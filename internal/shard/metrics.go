package shard

import "weaver/internal/obs"

// obsMetrics bundles the shard's observability handles, resolved once at
// construction (nil registry = every handle nil = every call a no-op).
// The shard contributes the tail of a transaction trace: wire_transfer
// (gatekeeper send instant → shard receipt, measured against the trace
// mark), shard_queue (receipt → apply start), and shard_apply.
type obsMetrics struct {
	tracer       *obs.Tracer
	queueWait    *obs.Histogram // weaver_shard_queue_wait_seconds
	applyDur     *obs.Histogram // weaver_shard_apply_seconds
	batchTx      *obs.Histogram // weaver_shard_batch_txns (per-batch size)
	statsPublish *obs.Counter   // weaver_index_stats_published_total
}

func newObsMetrics(r *obs.Registry) obsMetrics {
	return obsMetrics{
		tracer:       r.Tracer(),
		queueWait:    r.LatencyHistogram("weaver_shard_queue_wait_seconds"),
		applyDur:     r.LatencyHistogram("weaver_shard_apply_seconds"),
		batchTx:      r.SizeHistogram("weaver_shard_batch_txns"),
		statsPublish: r.Counter("weaver_index_stats_published_total"),
	}
}
