package shard

import (
	"fmt"
	"sort"

	"weaver/internal/graph"
	"weaver/internal/index"
	"weaver/internal/wire"
)

// Secondary-index queries (internal/index). A lookup is a read at a
// snapshot, so it obeys exactly the node-program rules: the shard delays
// evaluation until every transaction at or before the read timestamp has
// applied (§4.1 readiness), refuses timestamps behind the GC watermark
// with a typed error (§4.5 — never wrong data), and builds its visibility
// predicate from the same write-before-read refinement programs use.
// Lookups run on the event loop between apply batches, so they never
// observe a half-applied transaction.

// runReadyLookups answers every pending index lookup whose read timestamp
// the shard has fully passed.
func (s *Shard) runReadyLookups() {
	if len(s.lookups) == 0 {
		return
	}
	remaining := s.lookups[:0]
	for _, m := range s.lookups {
		if !s.progReady(m.ReadTS) {
			remaining = append(remaining, m)
			continue
		}
		s.answerLookup(m)
	}
	s.lookups = remaining
}

// answerLookup evaluates one ready lookup and replies to its coordinator.
func (s *Shard) answerLookup(m wire.IndexLookup) {
	s.indexLookups.Add(1)
	if s.snapshotStale(m.ReadTS) {
		s.ep.Send(m.Reply, wire.IndexResult{
			QID:     m.QID,
			Shard:   s.cfg.ID,
			ErrCode: wire.ErrCodeStaleSnapshot,
			Err: fmt.Sprintf("shard %d: lookup timestamp %v behind GC watermark %v",
				s.cfg.ID, m.ReadTS, s.gcWM),
			Trace: m.Trace,
		})
		return
	}
	before := s.visible(m.ReadTS)
	var (
		ids              []graph.VertexID
		indexed          bool
		matched, scanned int
	)
	switch {
	case len(m.Wheres) > 0:
		// Pushed-down predicate conjunction: Key/Value/Lo/Hi/Range are
		// ignored by contract (wire.IndexLookup).
		ids, matched, scanned, indexed = s.evalWheres(m.Wheres, m.Limit, before)
	case m.Range:
		ids, indexed = s.idx.LookupRange(m.Key, m.Lo, m.Hi, before)
	default:
		ids, indexed = s.idx.Lookup(m.Key, m.Value, before)
	}
	if !indexed {
		s.ep.Send(m.Reply, wire.IndexResult{
			QID:     m.QID,
			Shard:   s.cfg.ID,
			ErrCode: wire.ErrCodeNoIndex,
			Err:     fmt.Sprintf("shard %d: no index on queried property key(s)", s.cfg.ID),
			Trace:   m.Trace,
		})
		return
	}
	res := wire.IndexResult{QID: m.QID, Shard: s.cfg.ID, Vertices: ids, Trace: m.Trace}
	if len(m.Wheres) > 0 {
		// Matched/Scanned ride the wire only for pushed-down queries, so
		// plain lookups keep their pre-extension frame bytes.
		res.Matched, res.Scanned = matched, scanned
	}
	s.ep.Send(m.Reply, res)
}

// evalWheres evaluates a pushed-down predicate conjunction against the
// secondary indexes at one visibility snapshot, sorted ascending and
// truncated to limit — the deterministic shard-side half of the
// gatekeeper's global merge (the global result is the first N of the
// union, so each shard's first N suffice). matched is this shard's
// pre-limit match count and scanned the candidate postings (or probes) the
// evaluation touched — the planner's actual-cost feedback.
//
// Evaluation order is selectivity-driven: equality predicates seed the
// candidate set straight from their posting lists (typically a handful of
// vertices), and every remaining predicate is then verified per candidate
// with a point probe (index.VisibleValue) — an inequality in a conjunction
// that also has an equality never pays for materializing its full range.
// Only an inequality-only conjunction falls back to range scans and set
// intersection.
//
// Inequality strictness: the index's range layer is inclusive, so on the
// range-scan path OpGt and OpLt evaluate the inclusive one-sided range and
// subtract the boundary value's own matches — exact because vertex
// properties are single-valued. An empty Value on an inequality means the
// unbounded side, matching LookupRange's convention; whereHolds mirrors
// both rules for the probe path.
func (s *Shard) evalWheres(ws []wire.Where, limit int, before graph.Before) (ids []graph.VertexID, matched, scanned int, indexed bool) {
	for _, w := range ws {
		if !s.idx.HasKey(w.Key) || w.Op > wire.OpLt {
			return nil, 0, 0, false
		}
	}
	var eqs, rest []wire.Where
	for _, w := range ws {
		if w.Op == wire.OpEq {
			eqs = append(eqs, w)
		} else {
			rest = append(rest, w)
		}
	}
	if len(eqs) == 0 {
		// No equality to seed from: materialize each range and intersect.
		eqs, rest = ws, nil
	}
	var cur map[graph.VertexID]struct{}
	for i, w := range eqs {
		var vs []graph.VertexID
		var ok bool
		switch w.Op {
		case wire.OpEq:
			vs, ok = s.idx.Lookup(w.Key, w.Value, before)
		case wire.OpGe:
			vs, ok = s.idx.LookupRange(w.Key, w.Value, "", before)
		case wire.OpLe:
			vs, ok = s.idx.LookupRange(w.Key, "", w.Value, before)
		case wire.OpGt:
			vs, ok = s.rangeStrict(w.Key, w.Value, "", before)
		case wire.OpLt:
			vs, ok = s.rangeStrict(w.Key, "", w.Value, before)
		}
		if !ok {
			return nil, 0, 0, false
		}
		scanned += len(vs)
		if i == 0 {
			cur = make(map[graph.VertexID]struct{}, len(vs))
			for _, v := range vs {
				cur[v] = struct{}{}
			}
		} else {
			next := make(map[graph.VertexID]struct{}, min(len(cur), len(vs)))
			for _, v := range vs {
				if _, in := cur[v]; in {
					next[v] = struct{}{}
				}
			}
			cur = next
		}
		if len(cur) == 0 {
			break // conjunction already empty; later predicates were key-checked above
		}
	}
	for _, w := range rest {
		if len(cur) == 0 {
			break
		}
		scanned += len(cur)
		for v := range cur {
			if val, ok := s.idx.VisibleValue(w.Key, v, before); !ok || !whereHolds(w.Op, val, w.Value) {
				delete(cur, v)
			}
		}
	}
	ids = make([]graph.VertexID, 0, len(cur))
	for v := range cur {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	matched = len(ids)
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	return ids, matched, scanned, true
}

// whereHolds reports whether a visible value satisfies one predicate — the
// probe-path twin of the range evaluation in evalWheres, including the
// empty-bound-means-unbounded convention.
func whereHolds(op byte, val, bound string) bool {
	switch op {
	case wire.OpEq:
		return val == bound
	case wire.OpGe:
		return val >= bound // any value >= "", so the unbounded side is free
	case wire.OpLe:
		return bound == "" || val <= bound
	case wire.OpGt:
		return bound == "" || val > bound
	case wire.OpLt:
		return bound == "" || val < bound
	}
	return false
}

// rangeStrict is LookupRange with a strict bound on the non-empty side.
func (s *Shard) rangeStrict(key, lo, hi string, before graph.Before) ([]graph.VertexID, bool) {
	ids, ok := s.idx.LookupRange(key, lo, hi, before)
	if !ok {
		return nil, false
	}
	bound := lo
	if bound == "" {
		bound = hi
	}
	if bound == "" {
		return ids, true // both sides unbounded: strictness is moot
	}
	ex, _ := s.idx.Lookup(key, bound, before)
	if len(ex) == 0 {
		return ids, true
	}
	drop := make(map[graph.VertexID]struct{}, len(ex))
	for _, v := range ex {
		drop[v] = struct{}{}
	}
	out := ids[:0]
	for _, v := range ids {
		if _, d := drop[v]; !d {
			out = append(out, v)
		}
	}
	return out, true
}

// DetachIndex removes and returns the encoded posting history of the
// given vertices — the index half of vertex migration, the counterpart of
// graph.Store.Detach. The bundle crosses the shard boundary in the wire
// codec (index.EncodePostings) so the in-process cluster exercises the
// same bytes a distributed deployment would ship. Returns nil when the
// shard has no indexes or the vertices carry no postings. Callers must
// hold the migration fence (gatekeepers paused, applies quiesced, read
// queries drained) on both shards.
func (s *Shard) DetachIndex(ids []graph.VertexID) []byte {
	p := s.idx.Detach(ids)
	if p.Empty() {
		return nil
	}
	return index.EncodePostings(p)
}

// AttachIndex installs a posting bundle produced by another shard's
// DetachIndex. The same fence contract as DetachIndex applies.
func (s *Shard) AttachIndex(data []byte) error {
	if len(data) == 0 || s.idx == nil {
		return nil
	}
	p, err := index.DecodePostings(data)
	if err != nil {
		return fmt.Errorf("shard %d: attach index postings: %w", s.cfg.ID, err)
	}
	s.idx.Attach(p)
	return nil
}
