package shard

import (
	"fmt"

	"weaver/internal/graph"
	"weaver/internal/index"
	"weaver/internal/wire"
)

// Secondary-index queries (internal/index). A lookup is a read at a
// snapshot, so it obeys exactly the node-program rules: the shard delays
// evaluation until every transaction at or before the read timestamp has
// applied (§4.1 readiness), refuses timestamps behind the GC watermark
// with a typed error (§4.5 — never wrong data), and builds its visibility
// predicate from the same write-before-read refinement programs use.
// Lookups run on the event loop between apply batches, so they never
// observe a half-applied transaction.

// runReadyLookups answers every pending index lookup whose read timestamp
// the shard has fully passed.
func (s *Shard) runReadyLookups() {
	if len(s.lookups) == 0 {
		return
	}
	remaining := s.lookups[:0]
	for _, m := range s.lookups {
		if !s.progReady(m.ReadTS) {
			remaining = append(remaining, m)
			continue
		}
		s.answerLookup(m)
	}
	s.lookups = remaining
}

// answerLookup evaluates one ready lookup and replies to its coordinator.
func (s *Shard) answerLookup(m wire.IndexLookup) {
	s.indexLookups.Add(1)
	if s.snapshotStale(m.ReadTS) {
		s.ep.Send(m.Reply, wire.IndexResult{
			QID:     m.QID,
			Shard:   s.cfg.ID,
			ErrCode: wire.ErrCodeStaleSnapshot,
			Err: fmt.Sprintf("shard %d: lookup timestamp %v behind GC watermark %v",
				s.cfg.ID, m.ReadTS, s.gcWM),
			Trace: m.Trace,
		})
		return
	}
	before := s.visible(m.ReadTS)
	var (
		ids     []graph.VertexID
		indexed bool
	)
	if m.Range {
		ids, indexed = s.idx.LookupRange(m.Key, m.Lo, m.Hi, before)
	} else {
		ids, indexed = s.idx.Lookup(m.Key, m.Value, before)
	}
	if !indexed {
		s.ep.Send(m.Reply, wire.IndexResult{
			QID:     m.QID,
			Shard:   s.cfg.ID,
			ErrCode: wire.ErrCodeNoIndex,
			Err:     fmt.Sprintf("shard %d: no index on property key %q", s.cfg.ID, m.Key),
			Trace:   m.Trace,
		})
		return
	}
	s.ep.Send(m.Reply, wire.IndexResult{QID: m.QID, Shard: s.cfg.ID, Vertices: ids, Trace: m.Trace})
}

// DetachIndex removes and returns the encoded posting history of the
// given vertices — the index half of vertex migration, the counterpart of
// graph.Store.Detach. The bundle crosses the shard boundary in the wire
// codec (index.EncodePostings) so the in-process cluster exercises the
// same bytes a distributed deployment would ship. Returns nil when the
// shard has no indexes or the vertices carry no postings. Callers must
// hold the migration fence (gatekeepers paused, applies quiesced, read
// queries drained) on both shards.
func (s *Shard) DetachIndex(ids []graph.VertexID) []byte {
	p := s.idx.Detach(ids)
	if p.Empty() {
		return nil
	}
	return index.EncodePostings(p)
}

// AttachIndex installs a posting bundle produced by another shard's
// DetachIndex. The same fence contract as DetachIndex applies.
func (s *Shard) AttachIndex(data []byte) error {
	if len(data) == 0 || s.idx == nil {
		return nil
	}
	p, err := index.DecodePostings(data)
	if err != nil {
		return fmt.Errorf("shard %d: attach index postings: %w", s.cfg.ID, err)
	}
	s.idx.Attach(p)
	return nil
}
