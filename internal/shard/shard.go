// Package shard implements Weaver's shard servers (§3.2, §4.1, §4.2): the
// in-memory multi-version graph partitions that execute transactions and
// node programs.
//
// Ordering model. Each shard keeps one queue per gatekeeper. Gatekeeper i's
// stream (transactions and NOPs) arrives FIFO — restored by sequence
// numbers — and carries monotonically increasing timestamps, so everything
// a shard will ever receive from gatekeeper i is vector-clock-after the
// last in-order item seen from i (the "frontier"). The event loop executes
// the transaction at the globally earliest head: a head runs when every
// other queue's head orders after it (consulting the timeline oracle for
// concurrent pairs — decisions are cached, §4.2) or is empty with a
// frontier already past it. NOPs never enqueue; they only advance the
// frontier (§4.2).
//
// Execution is conflict-aware parallel (see batch.go): after the earliest
// executable head is found, further executable heads with disjoint vertex
// footprints join the same batch and apply concurrently on a worker pool
// (Config.Workers); conflicting transactions land in separate batches and
// therefore still apply in timestamp order. Each applied transaction is
// acknowledged to its gatekeeper with a TxApplied message, enabling
// cluster-wide apply fences (gatekeeper Quiesce).
//
// Node programs (§4.1) wait until every frontier and every queued
// transaction is strictly after the program's timestamp — i.e. until all
// preceding and concurrent transactions have executed — then read the
// multi-version graph at the program's timestamp, refining the visibility
// of any version concurrent with it through the oracle (write-before-read
// preference, §4.1). Hops cascade locally and forward to peer shards;
// progress deltas flow to the coordinating gatekeeper.
package shard

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"weaver/internal/core"
	"weaver/internal/graph"
	"weaver/internal/index"
	"weaver/internal/kvstore"
	"weaver/internal/nodeprog"
	"weaver/internal/obs"
	"weaver/internal/oracle"
	"weaver/internal/partition"
	"weaver/internal/transport"
	"weaver/internal/wire"
)

// Config parameterizes a shard server.
type Config struct {
	// ID is this shard's index in [0, NumShards).
	ID int
	// NumGatekeepers sets the queue count.
	NumGatekeepers int
	// Epoch is the starting epoch.
	Epoch uint64
	// Retain disables version garbage collection, keeping the full
	// multi-version history for historical queries (§4.5).
	Retain bool
	// MaxCascade bounds one batch's local visit cascade (safety valve
	// against non-terminating programs). 0 = 1<<22.
	MaxCascade int
	// HeartbeatPeriod, when positive, sends liveness beats to the
	// cluster manager (§4.3).
	HeartbeatPeriod time.Duration
	// ManagerAddr receives heartbeats (default "climgr").
	ManagerAddr transport.Addr
	// MaxVertices, with a Pager, caps resident vertex histories: once the
	// GC watermark advances, cold vertices (all writes below the
	// watermark) are paged out, and node programs page missing vertices
	// back in from the backing store on demand (§6.1: "we implement
	// demand paging in Weaver to read vertices and edges from HyperDex
	// Warp in to the memory of Weaver shards"). 0 = unlimited.
	MaxVertices int
	// Workers sets the apply worker-pool size for conflict-aware parallel
	// transaction execution (batch.go). 0 or 1 applies serially on the
	// event loop, exactly as the original single-goroutine design.
	Workers int
	// MaxBatch caps how many mutually non-conflicting transactions one
	// parallel batch may contain, bounding the latency of the batch
	// barrier. 0 = 256. Ignored when Workers <= 1.
	MaxBatch int
	// Indexes declares the secondary property indexes this shard
	// maintains over its partition (internal/index); must be identical
	// across all shards of a cluster. Empty = no indexes.
	Indexes []index.Spec
	// StatsPeriod bounds how often this shard publishes per-key index
	// cardinality statistics (wire.IndexStats) to the gatekeepers for
	// query-plan cost estimates. 0 = 250ms; negative disables publication
	// (estimates degrade, pruning soundness is unaffected — it rests on
	// the marker catalog, not statistics).
	StatsPeriod time.Duration
	// Obs is the metrics/tracing registry. Nil disables observability
	// (every handle no-ops).
	Obs *obs.Registry
}

// Pager reads vertex records for demand paging; satisfied by
// kvstore.Backing.
type Pager interface {
	GetVersioned(key string) (value []byte, version uint64, ok bool)
}

// Stats counts shard activity.
type Stats struct {
	TxExecuted     uint64
	OpsApplied     uint64
	ApplyErrors    uint64
	ApplyBatches   uint64 // conflict-free batches executed (parallel or inline)
	MaxBatchTx     uint64 // largest batch selected so far
	OrderFallbacks uint64 // barrier drains of conflicting txs without proven order (oracle down)
	NopsSeen       uint64
	ProgVisits     uint64
	ProgBatches    uint64
	OrderQueries   uint64 // oracle consultations for head ordering
	ReadRefines    uint64 // concurrent-pair visibility decisions (write-before-read rule)
	CacheHits      uint64 // ordering answers served from the local cache
	GCCollected    uint64
	VersionsLive   uint64
	PagedIn        uint64
	PagedOut       uint64
	IndexLookups   uint64 // secondary-index queries answered by this shard
	IndexPostings  uint64 // resident index postings (live + superseded)
}

type queued struct {
	ts  core.Timestamp
	ops []graph.Op
	// at is the receipt time (zero for NOPs) and trace the propagated
	// trace ID (0 = untraced); both feed the shard_queue/shard_apply
	// instrumentation in apply.
	at    time.Time
	trace uint64
}

type hopBatch struct {
	qid         core.ID
	ts          core.Timestamp
	readTS      core.Timestamp // snapshot the program reads at (== ts unless historical)
	coordinator transport.Addr
	hops        []wire.Hop
	trace       uint64 // propagated trace ID, echoed on hops and deltas
}

// Shard is one shard server. All mutable state is owned by the Run loop
// goroutine; external readers use the atomic counters only.
type Shard struct {
	cfg Config
	ep  transport.Endpoint
	g   *graph.Store
	idx *index.Index
	orc oracle.Client
	reg *nodeprog.Registry
	dir partition.Directory
	m   obsMetrics

	reseq      []*transport.Resequencer[queued]
	queues     [][]queued
	frontier   []core.Timestamp
	pending    []*hopBatch
	lookups    []wire.IndexLookup
	progState  map[core.ID]map[graph.VertexID][]byte
	finished   map[core.ID]struct{}
	finishedQ  []core.ID // FIFO for bounding the finished set
	orderCache map[[2]core.ID]core.Order
	gcReports  map[int]core.Timestamp
	// gcWM is the watermark of the most recent version collection: every
	// version whose lifetime ended strictly before it is gone. Historical
	// reads are answered only at or above it (§4.5). Crash recovery also
	// raises it to the recovery horizon — wholesale-reloaded records are
	// faithful only from their last-update stamps onward, so older reads
	// must fail typed rather than see truncated history. Event-loop owned
	// (Recover and re-recovery run pre-Start or on the loop).
	gcWM core.Timestamp
	// epoch is the shard's current epoch (event-loop owned): stale-epoch
	// stream traffic — a crashed gatekeeper's last NOPs straggling in
	// after the barrier — is dropped instead of poisoning the reset
	// resequencers.
	epoch uint64
	// recoverSrc, when set (SetRecoverSource), lets the epoch barrier
	// re-scan the backing store for committed writes whose forwarding
	// gatekeeper died before delivering them.
	recoverSrc kvstore.Backing
	pager      Pager
	pool       *workerPool
	heat       *heatMap
	// statsAt is the last index-statistics publication instant
	// (event-loop owned; see maybePublishStats).
	statsAt  time.Time
	pagedIn  atomic.Uint64
	pagedOut atomic.Uint64

	hopSeq atomic.Uint64

	ctrl chan func()

	stop     chan struct{}
	stopOnce func()
	done     chan struct{}

	txExecuted     atomic.Uint64
	opsApplied     atomic.Uint64
	applyErrors    atomic.Uint64
	applyBatches   atomic.Uint64
	maxBatchTx     atomic.Uint64
	orderFallbacks atomic.Uint64
	nopsSeen       atomic.Uint64
	progVisits     atomic.Uint64
	progBatches    atomic.Uint64
	orderQueries   atomic.Uint64
	readRefines    atomic.Uint64
	cacheHits      atomic.Uint64
	gcCollected    atomic.Uint64
	indexLookups   atomic.Uint64
}

// New wires a shard server. Call Start to launch its event loop.
func New(cfg Config, ep transport.Endpoint, orc oracle.Client, reg *nodeprog.Registry, dir partition.Directory) *Shard {
	if cfg.MaxCascade <= 0 {
		cfg.MaxCascade = 1 << 22
	}
	if cfg.ManagerAddr == "" {
		cfg.ManagerAddr = "climgr"
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	s := &Shard{
		cfg:        cfg,
		ep:         ep,
		g:          graph.NewStore(),
		idx:        index.New(cfg.Indexes),
		orc:        orc,
		reg:        reg,
		dir:        dir,
		m:          newObsMetrics(cfg.Obs),
		reseq:      make([]*transport.Resequencer[queued], cfg.NumGatekeepers),
		queues:     make([][]queued, cfg.NumGatekeepers),
		frontier:   make([]core.Timestamp, cfg.NumGatekeepers),
		progState:  make(map[core.ID]map[graph.VertexID][]byte),
		finished:   make(map[core.ID]struct{}),
		orderCache: make(map[[2]core.ID]core.Order),
		gcReports:  make(map[int]core.Timestamp),
		heat:       newHeatMap(),
		ctrl:       make(chan func()),
		epoch:      cfg.Epoch,
	}
	for i := range s.reseq {
		s.reseq[i] = transport.NewResequencer[queued]()
	}
	stopCh := make(chan struct{})
	s.stop = stopCh
	var stopped atomic.Bool
	s.stopOnce = func() {
		if stopped.CompareAndSwap(false, true) {
			close(stopCh)
		}
	}
	s.done = make(chan struct{})
	return s
}

// ID returns the shard index.
func (s *Shard) ID() int { return s.cfg.ID }

// Graph exposes the multi-version store (read-only use: recovery checks and
// tests).
func (s *Shard) Graph() *graph.Store { return s.g }

// Stats returns a snapshot of activity counters.
func (s *Shard) Stats() Stats {
	return Stats{
		TxExecuted:     s.txExecuted.Load(),
		OpsApplied:     s.opsApplied.Load(),
		ApplyErrors:    s.applyErrors.Load(),
		ApplyBatches:   s.applyBatches.Load(),
		MaxBatchTx:     s.maxBatchTx.Load(),
		OrderFallbacks: s.orderFallbacks.Load(),
		NopsSeen:       s.nopsSeen.Load(),
		ProgVisits:     s.progVisits.Load(),
		ProgBatches:    s.progBatches.Load(),
		OrderQueries:   s.orderQueries.Load(),
		ReadRefines:    s.readRefines.Load(),
		CacheHits:      s.cacheHits.Load(),
		GCCollected:    s.gcCollected.Load(),
		VersionsLive:   uint64(s.g.NumVertices()),
		PagedIn:        s.pagedIn.Load(),
		PagedOut:       s.pagedOut.Load(),
		IndexLookups:   s.indexLookups.Load(),
		IndexPostings:  uint64(s.idx.NumPostings()),
	}
}

// SetPager enables demand paging from the backing store (call before
// Start).
func (s *Shard) SetPager(p Pager) { s.pager = p }

// Recover reloads this shard's partition from the backing store (§4.3):
// every live vertex record homed here becomes visible at its last-update
// timestamp. Must be called before Start, behind the cluster manager's
// epoch barrier.
func (s *Shard) Recover(kv kvstore.Backing) int {
	var recs []*graph.VertexRecord
	kv.ScanPrefix("v/", func(_ string, data []byte) {
		rec, err := graph.DecodeRecord(data)
		if err != nil || rec.Deleted || rec.Shard != s.cfg.ID {
			return
		}
		recs = append(recs, rec)
	})
	s.g.LoadAll(recs)
	s.indexRecords(recs)
	s.raiseRecoveryHorizon(recs)
	return len(recs)
}

// raiseRecoveryHorizon lifts the GC watermark to cover the reloaded
// records: each becomes visible wholesale at its last-update stamp, so a
// historical read below that stamp would silently see truncated history —
// missing versions, missing vertices. Raising gcWM makes such reads fail
// with the typed stale-snapshot error instead (prog.go/lookup.go gate on
// it). Reads in later epochs are unaffected: the horizon's old epoch is
// pointwise-below every new-epoch timestamp.
func (s *Shard) raiseRecoveryHorizon(recs []*graph.VertexRecord) {
	if len(recs) == 0 {
		return
	}
	horizon := s.gcWM
	for _, rec := range recs {
		if horizon.Zero() {
			horizon = rec.LastTS
			continue
		}
		horizon = core.PointwiseMax(horizon, rec.LastTS)
	}
	s.gcWM = horizon
}

// SetRecoverSource hands the shard a backing-store handle for epoch-time
// re-recovery (call before Start). With it set, every epoch barrier
// re-scans the store for records homed here whose last committed write is
// missing from the in-memory graph — the fate of a write-set whose owning
// gatekeeper was killed between backing-store commit and forward. Without
// a source the shard trusts the forward path alone (the in-process
// cluster, where a crashed gatekeeper's restart factory re-runs recovery
// explicitly).
func (s *Shard) SetRecoverSource(kv kvstore.Backing) { s.recoverSrc = kv }

// reRecoverFromStore reloads committed-but-never-forwarded writes at an
// epoch barrier. Runs on the event loop.
func (s *Shard) reRecoverFromStore() {
	if s.recoverSrc == nil {
		return
	}
	var missing []*graph.VertexRecord
	s.recoverSrc.ScanPrefix("v/", func(_ string, data []byte) {
		rec, err := graph.DecodeRecord(data)
		if err != nil || rec.Deleted || rec.Shard != s.cfg.ID {
			return
		}
		last := s.g.LastWrite(rec.ID)
		// A resident vertex whose in-memory history already covers the
		// store's stamp needs nothing; everything else was committed by a
		// gatekeeper that never delivered the forward.
		if !last.Zero() && rec.LastTS.Compare(last) != core.After {
			return
		}
		missing = append(missing, rec)
	})
	if len(missing) == 0 {
		return
	}
	s.g.LoadAll(missing)
	s.indexRecords(missing)
	s.raiseRecoveryHorizon(missing)
}

// Install loads bulk-ingested vertex records into the in-memory graph,
// skipping records homed on other shards, and returns the count installed.
// It is the shard-side consumer of snapshot segments (Cluster.BulkLoad):
// the caller must guarantee no conflicting transaction is applying —
// gatekeepers paused and applies quiesced — because records land exactly
// as in recovery, visible wholesale at their stamped timestamp.
func (s *Shard) Install(recs []*graph.VertexRecord) int {
	mine := recs[:0:0]
	for _, rec := range recs {
		if rec.Shard == s.cfg.ID && !rec.Deleted {
			mine = append(mine, rec)
		}
	}
	s.g.LoadAll(mine)
	s.indexRecords(mine)
	return len(mine)
}

// indexRecords rebuilds secondary-index state from installed records —
// the index half of recovery, bulk ingest, and migration fallback.
func (s *Shard) indexRecords(recs []*graph.VertexRecord) {
	if s.idx == nil {
		return
	}
	for _, rec := range recs {
		s.idx.InsertRecord(rec)
	}
}

// Start launches the event loop, the apply worker pool (Config.Workers),
// and the heartbeat ticker, if configured.
func (s *Shard) Start() {
	if s.cfg.Workers > 1 {
		s.pool = newWorkerPool(s, s.cfg.Workers)
	}
	go s.run()
	if s.cfg.HeartbeatPeriod > 0 {
		go func() {
			t := time.NewTicker(s.cfg.HeartbeatPeriod)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.ep.Send(s.cfg.ManagerAddr, wire.Heartbeat{From: s.ep.Addr()})
				}
			}
		}()
	}
}

// Pause implements the cluster manager's Server interface; shards have no
// issuance to pause.
func (s *Shard) Pause() {}

// Resume implements the cluster manager's Server interface.
func (s *Shard) Resume() {}

// EnterEpoch implements the §4.3 barrier on the event loop: drain all
// in-flight traffic (gatekeepers are paused, so the mailbox is complete),
// execute everything still queued, flush and reset the per-gatekeeper
// FIFO streams, and expect new-epoch numbering from 1. Blocks until the
// loop has applied it.
func (s *Shard) EnterEpoch(epoch uint64) {
	done := make(chan struct{})
	select {
	case s.ctrl <- func() {
		s.enterEpochNow(epoch)
		close(done)
	}:
		<-done
	case <-s.stop:
	}
}

// enterEpochNow is the event-loop half of EnterEpoch. It is also invoked
// inline when the barrier arrives as a wire.EpochChange (handle runs ON
// the event loop, so routing through the ctrl channel would deadlock).
func (s *Shard) enterEpochNow(epoch uint64) {
	for gk := range s.reseq {
		// Anything still buffered arrived out of order; apply it
		// in sequence order before resetting (gaps cannot occur
		// on the in-process fabric: sends land with the commit).
		for _, item := range s.reseq[gk].Flush() {
			s.frontier[gk] = item.ts
			if len(item.ops) > 0 {
				s.queues[gk] = append(s.queues[gk], item)
			}
		}
		s.reseq[gk].Reset()
	}
	s.drainAllQueued()
	// Over TCP a killed gatekeeper may have committed write-sets to the
	// backing store without forwarding them anywhere; pull them in now,
	// while the cluster is quiesced behind the barrier.
	s.reRecoverFromStore()
	s.epoch = epoch
	s.pump()
}

// drainAllQueued applies every queued transaction in refined timestamp
// order. Only valid at an epoch barrier: the per-gatekeeper streams are
// complete — no further old-epoch traffic can ever arrive — so the
// frontier checks that normally guard against unseen earlier traffic no
// longer constrain execution, and the queued set is totally ordered by
// order(). Without this, a transaction concurrent with a stalled peer
// frontier would survive the barrier unexecuted while the gatekeepers
// reset their apply accounting for the new epoch (Quiesce would lie).
func (s *Shard) drainAllQueued() {
	var acks ackSet
	warned := false
	for {
		best := -1
		for gk := range s.queues {
			if len(s.queues[gk]) == 0 {
				continue
			}
			if best == -1 {
				best = gk
				continue
			}
			// Tournament minimum under the oracle-refined total order.
			// order() answers Concurrent only when the oracle is
			// unreachable; the barrier must still terminate (the whole
			// cluster is blocked on it), so we fall back to keeping the
			// current candidate — safe for disjoint footprints (the
			// transactions commute) and surfaced loudly for conflicting
			// ones, where arbitrary order could misorder versions.
			switch s.order(s.queues[gk][0].ts, s.queues[best][0].ts) {
			case core.Before:
				best = gk
			case core.Concurrent:
				if graph.FootprintOf(s.queues[gk][0].ops).OverlapsOps(s.queues[best][0].ops) {
					s.orderFallbacks.Add(1)
					if !warned {
						warned = true
						fmt.Fprintf(os.Stderr,
							"weaver shard %d: epoch barrier with oracle unreachable; draining concurrent conflicting transactions in arbitrary order\n",
							s.cfg.ID)
					}
				}
			}
		}
		if best == -1 {
			acks.flush(s)
			return
		}
		h := s.queues[best][0]
		s.queues[best] = s.queues[best][1:]
		s.apply(h)
		acks.add([]queued{h})
	}
}

// Stop terminates the event loop and the worker pool.
func (s *Shard) Stop() {
	s.stopOnce()
	<-s.done
	// The event loop has exited, so no batch is in flight and nothing can
	// submit more work.
	if s.pool != nil {
		s.pool.stop()
	}
}

func (s *Shard) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case fn := <-s.ctrl:
			// Drain the mailbox before control actions so the epoch
			// barrier sees every in-flight message.
			s.drain()
			fn()
		case <-s.ep.Recv():
			s.drain()
			s.pump()
			s.maybePublishStats()
		}
	}
}

// maybePublishStats broadcasts this shard's index cardinality statistics
// to every gatekeeper, rate-limited to one publication per StatsPeriod.
// It runs on the event loop after each pump — the gatekeepers' NOP streams
// keep the loop waking, so no dedicated timer is needed — and the first
// call publishes immediately so planners have estimates soon after
// startup, recovery, or bulk ingest.
func (s *Shard) maybePublishStats() {
	if s.cfg.StatsPeriod < 0 || len(s.cfg.Indexes) == 0 {
		return
	}
	period := s.cfg.StatsPeriod
	if period == 0 {
		period = 250 * time.Millisecond
	}
	now := time.Now()
	if !s.statsAt.IsZero() && now.Sub(s.statsAt) < period {
		return
	}
	s.statsAt = now
	st := s.IndexStats()
	for i := 0; i < s.cfg.NumGatekeepers; i++ {
		s.ep.Send(transport.GatekeeperAddr(i), st)
	}
	s.m.statsPublish.Inc()
}

// IndexStats snapshots this shard's per-key index cardinality statistics
// in wire form, keys sorted for determinism. Safe to call off the event
// loop (the index takes its own locks): the cluster pulls it synchronously
// under the migration fence so planner estimates never lag a completed
// batch.
func (s *Shard) IndexStats() wire.IndexStats {
	st := wire.IndexStats{Shard: s.cfg.ID}
	for _, k := range s.idx.Stats() {
		st.Keys = append(st.Keys, wire.KeyCard{
			Key:      k.Key,
			Distinct: uint64(k.Distinct),
			Postings: uint64(k.Postings),
			Bounds:   k.Bounds,
		})
	}
	sort.Slice(st.Keys, func(i, j int) bool { return st.Keys[i].Key < st.Keys[j].Key })
	return st
}

// drain ingests every message currently in the mailbox.
func (s *Shard) drain() {
	for {
		msg, ok := s.ep.Next()
		if !ok {
			return
		}
		s.handle(msg)
	}
}

func (s *Shard) handle(msg transport.Message) {
	switch m := msg.Payload.(type) {
	case wire.TxForward:
		now := time.Now()
		if m.Trace != 0 {
			// Close the wire_transfer span against the mark the
			// gatekeeper set at its send instant (same-process tracer;
			// over TCP the lookup misses and this no-ops).
			s.m.tracer.Lookup(m.Trace).SpanSinceMark("wire_transfer", now)
		}
		s.ingest(m.TS, m.Seq, m.Ops, now, m.Trace)
	case wire.Nop:
		s.nopsSeen.Add(1)
		s.ingest(m.TS, m.Seq, nil, time.Time{}, 0)
	case wire.ProgStart:
		s.pending = append(s.pending, &hopBatch{qid: m.QID, ts: m.TS, readTS: readOrTS(m.ReadTS, m.TS), coordinator: m.Coordinator, hops: m.Hops, trace: m.Trace})
	case wire.ProgHops:
		s.pending = append(s.pending, &hopBatch{qid: m.QID, ts: m.TS, readTS: readOrTS(m.ReadTS, m.TS), coordinator: m.Coordinator, hops: m.Hops, trace: m.Trace})
	case wire.ProgFinish:
		delete(s.progState, m.QID)
		if _, seen := s.finished[m.QID]; !seen {
			s.finished[m.QID] = struct{}{}
			s.finishedQ = append(s.finishedQ, m.QID)
			// Bound the tombstone set; old queries cannot produce
			// further hops once their coordinator long closed.
			const maxFinished = 1 << 14
			for len(s.finishedQ) > maxFinished {
				delete(s.finished, s.finishedQ[0])
				s.finishedQ = s.finishedQ[1:]
			}
		}
	case wire.IndexLookup:
		s.lookups = append(s.lookups, m)
	case wire.GCReport:
		if !s.cfg.Retain {
			s.gcReports[m.GK] = m.TS
			s.maybeGC()
		}
	case wire.EpochChange:
		// Remote-manager barrier (§4.3). We are already on the event
		// loop and the mailbox was drained before this message, so the
		// inline epoch entry sees every in-flight old-epoch message.
		replyTo := m.From
		if replyTo == "" {
			replyTo = msg.From
		}
		if m.Phase == wire.EpochPhaseEnter {
			s.enterEpochNow(m.Epoch)
		}
		s.ep.Send(replyTo, wire.EpochAck{Epoch: m.Epoch, From: s.ep.Addr(), Phase: m.Phase})
	}
}

// appliedBound returns a timestamp pointwise at-or-below every transaction
// this shard has received or will receive but not yet applied: per
// gatekeeper, the queue head if one is waiting, else the frontier (the
// stream is timestamp-monotone, so everything not yet delivered from that
// gatekeeper is strictly after its frontier). Zero while any frontier is
// still unestablished (startup).
func (s *Shard) appliedBound() core.Timestamp {
	var bound core.Timestamp
	for gk := range s.queues {
		ts := s.frontier[gk]
		if len(s.queues[gk]) > 0 {
			ts = s.queues[gk][0].ts
		}
		if ts.Zero() {
			return core.Timestamp{}
		}
		if bound.Zero() {
			bound = ts
		} else {
			bound = core.PointwiseMin(bound, ts)
		}
	}
	return bound
}

// readOrTS resolves a message's read timestamp: zero means "read at the
// query's own timestamp" (senders predating the ReadTS field).
func readOrTS(readTS, ts core.Timestamp) core.Timestamp {
	if readTS.Zero() {
		return ts
	}
	return readTS
}

// ingest pushes one in-order stream item through the resequencer; NOPs
// advance the frontier, transactions enqueue.
func (s *Shard) ingest(ts core.Timestamp, seq uint64, ops []graph.Op, at time.Time, trace uint64) {
	gk := ts.Owner
	if gk < 0 || gk >= len(s.queues) {
		return
	}
	// A stale-epoch item — a dead gatekeeper's last traffic straggling in
	// after the barrier, or a paused peer's pre-barrier NOP delayed by
	// TCP — must not enter the resequencer: its old sequence numbering
	// would wedge the reset stream (new-epoch items start at 1) and its
	// timestamp precedes everything the barrier already drained.
	if ts.Epoch < s.epoch {
		return
	}
	s.reseq[gk].Push(seq, queued{ts: ts, ops: ops, at: at, trace: trace})
	for {
		item, ok := s.reseq[gk].Pop()
		if !ok {
			break
		}
		s.frontier[gk] = item.ts
		if len(item.ops) > 0 {
			s.queues[gk] = append(s.queues[gk], item)
		}
	}
}

// pump drains all executable work: conflict-free batches of transactions
// (timestamp order across conflicting pairs, parallel within a batch —
// see batch.go), then any node-program batches that have become ready.
func (s *Shard) pump() {
	limit := 1
	if s.pool != nil {
		limit = s.cfg.MaxBatch
	}
	var acks ackSet
	for {
		batch := s.selectBatch(limit)
		if len(batch) == 0 {
			break
		}
		s.applyBatch(batch)
		acks.add(batch)
	}
	acks.flush(s)
	s.runReadyProgs()
	s.runReadyLookups()
}

// executable reports whether the transaction at ts (head of queue hgk) is
// safe to execute: every other gatekeeper's next possible transaction is
// after it.
func (s *Shard) executable(ts core.Timestamp, hgk int) bool {
	for gk := range s.queues {
		if gk == hgk {
			continue
		}
		if len(s.queues[gk]) > 0 {
			if s.order(ts, s.queues[gk][0].ts) != core.Before {
				return false
			}
			continue
		}
		// Empty queue: rely on the frontier — everything still to come
		// from gk is vclock-after it.
		f := s.frontier[gk]
		if f.Zero() || ts.Compare(f) != core.Before {
			return false
		}
	}
	return true
}

// order resolves the execution order of two concurrent-capable timestamps,
// refining through the timeline oracle when vector clocks are inconclusive
// (§3.4). Decisions are cached shard-side — the oracle's answers are
// irreversible, so the cache never invalidates (§4.2).
func (s *Shard) order(a, b core.Timestamp) core.Order {
	if cmp := a.Compare(b); cmp != core.Concurrent {
		return cmp
	}
	key := [2]core.ID{a.ID(), b.ID()}
	if o, ok := s.orderCache[key]; ok {
		s.cacheHits.Add(1)
		return o
	}
	s.orderQueries.Add(1)
	o, err := s.orc.QueryOrder(oracle.EventOf(a), oracle.EventOf(b), core.Before)
	if err != nil {
		// Unreachable oracle: be conservative, do not execute.
		return core.Concurrent
	}
	s.orderCache[key] = o
	s.orderCache[[2]core.ID{key[1], key[0]}] = o.Invert()
	return o
}

// apply executes one transaction with its queue-wait/apply instrumentation
// around applyOps. It runs on the event loop or a pool worker; trace
// methods are safe from either. The shard's trace token (registered by the
// gatekeeper's Expect before the forward was sent) is released here — the
// last release across all involved shards completes the trace.
func (s *Shard) apply(q queued) {
	tA := time.Now()
	if !q.at.IsZero() {
		s.m.queueWait.Dur(tA.Sub(q.at))
	}
	s.applyOps(q)
	s.m.applyDur.Since(tA)
	if q.trace != 0 {
		if t := s.m.tracer.Lookup(q.trace); t != nil {
			t.Span("shard_queue", q.at, tA)
			t.SpanSince("shard_apply", tA)
			s.m.tracer.Done(t)
		}
	}
}

// applyOps executes one transaction's operations against the multi-version
// graph. Operations were validated at the backing store (§4.2); a failure
// here is an ordering bug and is surfaced loudly.
//
// With demand paging, an operation may target an evicted vertex: the
// backing-store record — which already includes this transaction's effects,
// stamped with its timestamp (commits reach the store before shards) — is
// paged back in, and the transaction's remaining operations on that vertex
// are skipped to avoid double application.
func (s *Shard) applyOps(q queued) {
	s.heat.addOps(q.ops)
	if s.pager == nil {
		// Hot path: the whole transaction under one store-lock
		// acquisition, counters batched per transaction.
		n := s.g.ApplyTx(q.ops, q.ts, func(op graph.Op, err error) {
			s.reportApplyErr(op, q.ts, err)
		})
		// The secondary indexes consume the same delta stream under the
		// same footprint contract: same-vertex operations arrive in
		// timestamp order, disjoint-vertex ones may arrive concurrently
		// from the worker pool (the index commutes them).
		s.idx.ApplyTx(q.ops, q.ts)
		s.opsApplied.Add(uint64(n))
		s.txExecuted.Add(1)
		return
	}
	var paged map[graph.VertexID]bool
	for _, op := range q.ops {
		if paged[op.Vertex] {
			s.opsApplied.Add(1)
			continue
		}
		if op.Kind != graph.OpCreateVertex && !s.g.Has(op.Vertex) {
			if s.pageIn(op.Vertex) {
				// The paged-in record already includes this
				// transaction's effects; InsertRecord inside pageIn
				// reconciled the index to it, and the index's own
				// record watermark suppresses the skipped operations.
				if paged == nil {
					paged = make(map[graph.VertexID]bool)
				}
				paged[op.Vertex] = true
				s.opsApplied.Add(1)
				continue
			}
		}
		if err := s.g.Apply(op, q.ts); err != nil {
			s.reportApplyErr(op, q.ts, err)
		} else {
			s.opsApplied.Add(1)
		}
		s.idx.Apply(op, q.ts)
	}
	s.txExecuted.Add(1)
}

// reportApplyErr counts and surfaces an apply failure (an ordering bug —
// operations were validated at the backing store).
func (s *Shard) reportApplyErr(op graph.Op, ts core.Timestamp, err error) {
	s.applyErrors.Add(1)
	fmt.Fprintf(os.Stderr, "weaver shard %d: apply %v at %v: %v\n", s.cfg.ID, op.Kind, ts, err)
}

// pageIn faults one vertex record from the backing store into the
// in-memory graph (§6.1). Returns false when the record is absent, deleted,
// or homed elsewhere.
func (s *Shard) pageIn(v graph.VertexID) bool {
	data, _, found := s.pager.GetVersioned("v/" + string(v))
	if !found {
		return false
	}
	rec, err := graph.DecodeRecord(data)
	if err != nil || rec.Deleted || rec.Shard != s.cfg.ID {
		return false
	}
	s.g.Load(rec)
	s.idx.InsertRecord(rec)
	s.pagedIn.Add(1)
	return true
}

// maybeGC prunes graph versions once a watermark report from every
// gatekeeper is in (§4.5).
func (s *Shard) maybeGC() {
	if len(s.gcReports) < s.cfg.NumGatekeepers {
		return
	}
	// One full round of gatekeeper reports is also the shard's cue to
	// report its apply progress for the ORACLE watermark: the dependency
	// DAG must not forget orders of transactions still queued here (see
	// wire.ShardGCReport).
	s.ep.Send(transport.GatekeeperAddr(0), wire.ShardGCReport{Shard: s.cfg.ID, TS: s.appliedBound()})
	all := make([]core.Timestamp, 0, len(s.gcReports))
	zero := false
	for _, ts := range s.gcReports {
		zero = zero || ts.Zero()
		all = append(all, ts)
	}
	s.gcReports = make(map[int]core.Timestamp)
	if zero {
		// A zero report means that gatekeeper is holding everything
		// (HistoryRetention window not yet aged): collect nothing and
		// leave the watermark where it was.
		return
	}
	wm := core.PointwiseMin(all...)
	// The watermark only ratchets forward: per-gatekeeper reports are
	// monotone, but the staleness gate must never loosen even if a
	// combination of reports momentarily computes lower. Collection uses
	// the SAME ratcheted value as the gate — collecting at a fresher wm
	// than the gate checks would let a read pass the gate and then miss
	// just-collected versions (wrong data instead of ErrStaleSnapshot).
	// (Pointwise, like the collection test itself: the combined watermark
	// is a synthetic vector whose owner identity can collide with a real
	// timestamp's, making happens-before Compare report a strict pointwise
	// advance as Equal/Concurrent and freeze the ratchet.)
	advanced := false
	if s.gcWM.Zero() || s.gcWM.PointwiseLT(wm) {
		s.gcWM = wm
		advanced = true
	}
	if advanced {
		n := s.g.CollectBefore(s.gcWM)
		// Postings prune at the SAME ratcheted watermark as graph
		// versions: the staleness gate that protects graph reads
		// protects index lookups identically, so a lookup that passes
		// it always finds its postings.
		n += s.idx.CollectBefore(s.gcWM)
		s.gcCollected.Add(uint64(n))
	}
	// When the watermark did NOT advance — a pinned snapshot or the
	// retention window is holding it — the version sweeps above are
	// skipped: nothing can have become collectable since the last pass (a
	// version is collectable only if its lifetime ended below the
	// watermark, and versions only ever die at fresh timestamps ABOVE a
	// frozen watermark). Without the skip, every report round under a
	// held pin rescans the ever-growing version history and the event
	// loop starves the apply path. Eviction and the cache bound below
	// still run every round: a vertex whose writes all predate the frozen
	// watermark can still become evictable (the cap may only now be
	// exceeded, or an earlier pass hit its limit), and the cache check is
	// O(1).
	//
	// Demand paging, eviction half (§6.1): shed cold vertices above the
	// memory cap; they page back in from the backing store on access.
	// Index postings are deliberately NOT evicted: lookups answer for
	// paged-out vertices without faulting them in, so the index must keep
	// its (GC-bounded) posting chains resident — Config.MaxVertices caps
	// graph version history only.
	if s.cfg.MaxVertices > 0 && s.pager != nil {
		if over := s.g.NumVertices() - s.cfg.MaxVertices; over > 0 {
			evicted := s.g.EvictBefore(s.gcWM, over)
			s.pagedOut.Add(uint64(len(evicted)))
		}
	}
	// The ordering cache only grows; decisions about collected events can
	// never be asked again (every future reader or writer is vclock-after
	// them), so bounding it by occasional wholesale reset is safe — a
	// dropped entry is re-fetched from the oracle, whose answers are
	// irreversible.
	if len(s.orderCache) > 1<<20 {
		s.orderCache = make(map[[2]core.ID]core.Order)
	}
}
