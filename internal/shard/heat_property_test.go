package shard

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"weaver/internal/graph"
	"weaver/internal/workload"
)

// TestHeatProperties drives the heat table with a randomized workload and
// checks its invariants after every step:
//
//   - decay is monotone: no score increases, no vertex (re)appears;
//   - HeatTopK is consistent with the raw table: sorted hottest-first with
//     deterministic ID tie-breaks, and exactly the k best entries;
//   - the size cap is never exceeded after any operation.
func TestHeatProperties(t *testing.T) {
	seed := workload.TestSeed(t)
	r := rand.New(rand.NewSource(seed))
	h := newHeatMap()
	vid := func(i int) graph.VertexID { return graph.VertexID(fmt.Sprintf("v%d", i)) }

	snapshot := func() map[graph.VertexID]float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		out := make(map[graph.VertexID]float64, len(h.m))
		for v, w := range h.m {
			out[v] = w
		}
		return out
	}
	size := func() int {
		h.mu.Lock()
		defer h.mu.Unlock()
		return len(h.m)
	}
	checkCap := func(step string) {
		t.Helper()
		if n := size(); n > heatMaxEntries {
			t.Fatalf("%s: table holds %d entries, cap %d", step, n, heatMaxEntries)
		}
	}
	checkTopK := func(step string) {
		t.Helper()
		raw := snapshot()
		for _, k := range []int{0, 1, 3, len(raw), len(raw) + 10} {
			top := h.topK(k, 7)
			wantLen := len(raw)
			if k > 0 && k < wantLen {
				wantLen = k
			}
			if len(top) != wantLen {
				t.Fatalf("%s: topK(%d) returned %d of %d", step, k, len(top), len(raw))
			}
			for i, vh := range top {
				if vh.Shard != 7 {
					t.Fatalf("%s: topK entry carries shard %d", step, vh.Shard)
				}
				if vh.Heat != raw[vh.Vertex] {
					t.Fatalf("%s: topK reports %q=%g, raw table says %g", step, vh.Vertex, vh.Heat, raw[vh.Vertex])
				}
				if i > 0 {
					prev := top[i-1]
					if prev.Heat < vh.Heat || (prev.Heat == vh.Heat && prev.Vertex >= vh.Vertex) {
						t.Fatalf("%s: topK not sorted at %d: %+v before %+v", step, i, prev, vh)
					}
				}
			}
			// Every excluded vertex must be no hotter than the coldest
			// included one (with the ID tie-break).
			if k > 0 && len(top) == k && k < len(raw) {
				cold := top[len(top)-1]
				in := make(map[graph.VertexID]bool, len(top))
				for _, vh := range top {
					in[vh.Vertex] = true
				}
				for v, w := range raw {
					if in[v] {
						continue
					}
					if w > cold.Heat || (w == cold.Heat && v < cold.Vertex) {
						t.Fatalf("%s: topK(%d) excluded %q=%g but included %q=%g", step, k, v, w, cold.Vertex, cold.Heat)
					}
				}
			}
		}
	}

	for step := 0; step < 300; step++ {
		switch r.Intn(4) {
		case 0: // transactional writes
			ops := make([]graph.Op, 1+r.Intn(8))
			for i := range ops {
				ops[i] = graph.Op{Kind: graph.OpSetVertexProp, Vertex: vid(r.Intn(500))}
			}
			h.addOps(ops)
		case 1: // program-visit credits
			credits := make(map[graph.VertexID]float64)
			for i := 0; i < 1+r.Intn(8); i++ {
				credits[vid(r.Intn(500))] += heatVisit + float64(r.Intn(2))*heatRemoteHop
			}
			h.addMany(credits)
		case 2: // decay: monotone, no resurrections
			before := snapshot()
			factor := 0.1 + 0.8*r.Float64()
			h.decay(factor)
			after := snapshot()
			for v, w := range after {
				bw, existed := before[v]
				if !existed {
					t.Fatalf("step %d: decay resurrected %q", step, v)
				}
				if w > bw+1e-9 {
					t.Fatalf("step %d: decay increased %q: %g -> %g", step, v, bw, w)
				}
				if math.Abs(w-bw*factor) > 1e-9 {
					t.Fatalf("step %d: decay of %q not multiplicative: %g*%g != %g", step, v, bw, factor, w)
				}
			}
			for v, bw := range before {
				if _, kept := after[v]; !kept && bw*factor >= heatFloor {
					t.Fatalf("step %d: decay dropped %q at %g (floor %g)", step, v, bw*factor, heatFloor)
				}
			}
		case 3: // forget
			h.forget(vid(r.Intn(500)))
		}
		checkCap(fmt.Sprintf("step %d", step))
		if step%25 == 0 {
			checkTopK(fmt.Sprintf("step %d", step))
		}
	}
	checkTopK("final")
}

// TestHeatCapUnderChurn floods the table with far more distinct vertices
// than the cap and checks the bound holds after every batch — the
// regression the cap exists for (clusters that track heat but never run a
// rebalancer to decay it).
func TestHeatCapUnderChurn(t *testing.T) {
	h := newHeatMap()
	total := heatMaxEntries*2 + 1000
	batch := make([]graph.Op, 256)
	for lo := 0; lo < total; lo += len(batch) {
		for i := range batch {
			batch[i] = graph.Op{Kind: graph.OpCreateEdge, Vertex: graph.VertexID(fmt.Sprintf("churn%d", lo+i))}
		}
		h.addOps(batch)
		h.mu.Lock()
		n := len(h.m)
		h.mu.Unlock()
		if n > heatMaxEntries {
			t.Fatalf("after %d inserts: %d entries, cap %d", lo+len(batch), n, heatMaxEntries)
		}
	}
	// Survivors must still rank correctly.
	top := h.topK(10, 0)
	if len(top) != 10 {
		t.Fatalf("topK after churn: %d entries", len(top))
	}
}
