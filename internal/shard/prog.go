package shard

import (
	"fmt"
	"os"

	"weaver/internal/core"
	"weaver/internal/graph"
	"weaver/internal/nodeprog"
	"weaver/internal/oracle"
	"weaver/internal/transport"
	"weaver/internal/wire"
)

// runReadyProgs executes every pending node-program batch whose timestamp
// the shard has fully passed (§4.1: "Weaver delays execution of a node
// program at a shard until after execution of all preceding and concurrent
// transactions").
func (s *Shard) runReadyProgs() {
	if len(s.pending) == 0 {
		return
	}
	remaining := s.pending[:0]
	for _, b := range s.pending {
		if _, gone := s.finished[b.qid]; gone {
			continue // late hops for a closed query
		}
		if !s.progReady(b.ts) {
			remaining = append(remaining, b)
			continue
		}
		s.runBatch(b)
	}
	s.pending = remaining
}

// progReady reports whether every transaction this shard could still
// execute is strictly after ts: each queue is empty with its frontier past
// ts, or its head (hence everything behind it) is vclock-after ts.
func (s *Shard) progReady(ts core.Timestamp) bool {
	for gk := range s.queues {
		if len(s.queues[gk]) > 0 {
			if ts.Compare(s.queues[gk][0].ts) != core.Before {
				return false
			}
			continue
		}
		f := s.frontier[gk]
		if f.Zero() || ts.Compare(f) != core.Before {
			return false
		}
	}
	return true
}

// visible builds the snapshot predicate for a node program at ts: a version
// written at w is visible iff w happened before ts, refining concurrent
// pairs through the timeline oracle with the write-before-read preference
// (§4.1: for fresh pairs "the oracle will prefer arrival order … always
// ordering node programs after transactions"), so programs never miss
// updates from transactions that committed before they ran.
func (s *Shard) visible(progTS core.Timestamp) graph.Before {
	progEv := oracle.EventOf(progTS)
	return func(w core.Timestamp) bool {
		switch w.Compare(progTS) {
		case core.Before:
			return true
		case core.After, core.Equal:
			return false
		}
		key := [2]core.ID{w.ID(), progEv.ID}
		if o, ok := s.orderCache[key]; ok {
			s.cacheHits.Add(1)
			return o == core.Before
		}
		s.readRefines.Add(1)
		o, err := s.orc.QueryOrder(oracle.EventOf(w), progEv, core.Before)
		if err != nil {
			return false // unreachable oracle: hide the version
		}
		s.orderCache[key] = o
		s.orderCache[[2]core.ID{progEv.ID, key[0]}] = o.Invert()
		return o == core.Before
	}
}

// runBatch executes a batch of hops and their local cascade, forwards
// remote hops, and reports the delta to the coordinator.
func (s *Shard) runBatch(b *hopBatch) {
	s.progBatches.Add(1)
	view := s.g.At(s.visible(b.ts))

	states := s.progState[b.qid]
	if states == nil {
		states = make(map[graph.VertexID][]byte)
		s.progState[b.qid] = states
	}

	work := append([]wire.Hop(nil), b.hops...)
	consumed := make([]uint64, 0, len(b.hops))
	for _, h := range b.hops {
		consumed = append(consumed, h.ID)
	}
	var results [][]byte
	remote := make(map[int][]wire.Hop)
	visits := 0
	// Heat attribution (§4.6): every visit warms its vertex; a visit whose
	// hop arrived from another shard warms it more (that hop is the
	// cross-partition traffic repartitioning wants to eliminate). Credits
	// accumulate locally and flush in one lock acquisition per batch —
	// BEFORE the batch's delta leaves the shard, so a migration that
	// drains programs and then evicts a vertex's heat cannot be overtaken
	// by a late flush resurrecting the entry on the source shard.
	credits := make(map[graph.VertexID]float64)
	flushHeat := func() {
		s.heat.addMany(credits)
		credits = nil
	}
	fail := func(err error) {
		flushHeat()
		s.ep.Send(b.coordinator, wire.ProgDelta{QID: b.qid, Err: err.Error()})
		delete(s.progState, b.qid)
	}
	for len(work) > 0 {
		if visits >= s.cfg.MaxCascade {
			fail(fmt.Errorf("shard %d: node program %v exceeded cascade limit %d", s.cfg.ID, b.qid, s.cfg.MaxCascade))
			return
		}
		hop := work[len(work)-1]
		work = work[:len(work)-1]
		visits++
		s.progVisits.Add(1)
		credits[hop.Vertex] += heatVisit
		if hop.Origin >= 0 && hop.Origin != s.cfg.ID {
			credits[hop.Vertex] += heatRemoteHop
		}

		p, found := s.reg.Get(hop.Program)
		if !found {
			fail(fmt.Errorf("shard %d: unknown node program %q", s.cfg.ID, hop.Program))
			return
		}
		vv, ok := view.Vertex(hop.Vertex)
		if !ok && s.pager != nil && !s.g.Has(hop.Vertex) {
			// Demand paging, fault half (§6.1): the vertex may have
			// been evicted; reload its committed record.
			if s.pageIn(hop.Vertex) {
				vv, _ = view.Vertex(hop.Vertex)
			}
		}
		ctx := &nodeprog.Context{
			Query:    b.qid,
			TS:       b.ts,
			VertexID: hop.Vertex,
			Vertex:   vv,
			State:    states[hop.Vertex],
			Params:   hop.Params,
		}
		res, err := p.Visit(ctx)
		if err != nil {
			fail(fmt.Errorf("shard %d: program %q at %q: %v", s.cfg.ID, hop.Program, hop.Vertex, err))
			return
		}
		if res.State != nil {
			states[hop.Vertex] = res.State
		}
		if res.Return != nil {
			results = append(results, res.Return)
		}
		for _, nh := range res.Hops {
			nextProg := nh.Program
			if nextProg == "" {
				nextProg = hop.Program
			}
			if tgt := s.dir.Lookup(nh.Vertex); tgt != s.cfg.ID {
				// Remote hops get unique IDs (shard index in the
				// high bits) for the coordinator's spawn/consume
				// matching.
				id := s.hopSeq.Add(1) | uint64(s.cfg.ID+1)<<48
				remote[tgt] = append(remote[tgt], wire.Hop{ID: id, Vertex: nh.Vertex, Program: nextProg, Params: nh.Params, Origin: s.cfg.ID})
			} else {
				// Local cascade: executed in this batch, no ID needed.
				work = append(work, wire.Hop{Vertex: nh.Vertex, Program: nextProg, Params: nh.Params, Origin: s.cfg.ID})
			}
		}
	}

	flushHeat()
	var spawnedIDs []uint64
	for tgt, hops := range remote {
		for _, h := range hops {
			spawnedIDs = append(spawnedIDs, h.ID)
		}
		s.ep.Send(transport.ShardAddr(tgt), wire.ProgHops{
			QID:         b.qid,
			TS:          b.ts,
			Coordinator: b.coordinator,
			Hops:        hops,
		})
	}
	if err := s.ep.Send(b.coordinator, wire.ProgDelta{
		QID:         b.qid,
		ConsumedIDs: consumed,
		SpawnedIDs:  spawnedIDs,
		Results:     results,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "weaver shard %d: delta to %s: %v\n", s.cfg.ID, b.coordinator, err)
	}
}
