package shard

import (
	"fmt"
	"os"

	"weaver/internal/core"
	"weaver/internal/graph"
	"weaver/internal/nodeprog"
	"weaver/internal/transport"
	"weaver/internal/wire"
)

// runReadyProgs executes every pending node-program batch whose timestamp
// the shard has fully passed (§4.1: "Weaver delays execution of a node
// program at a shard until after execution of all preceding and concurrent
// transactions").
func (s *Shard) runReadyProgs() {
	if len(s.pending) == 0 {
		return
	}
	remaining := s.pending[:0]
	for _, b := range s.pending {
		if _, gone := s.finished[b.qid]; gone {
			continue // late hops for a closed query
		}
		// Readiness is judged at the READ timestamp: a historical query
		// only needs everything at or before its snapshot applied, so it
		// never waits behind traffic newer than what it reads.
		if !s.progReady(b.readTS) {
			remaining = append(remaining, b)
			continue
		}
		if s.snapshotStale(b.readTS) {
			// The snapshot fell behind the GC watermark: versions it
			// would need may be collected. Refuse with a typed code —
			// never wrong data. Checked batch-by-batch on the event
			// loop, which also runs GC, so a batch that passes reads
			// strictly pre-collection state.
			s.ep.Send(b.coordinator, wire.ProgDelta{
				QID:     b.qid,
				ErrCode: wire.ErrCodeStaleSnapshot,
				Err: fmt.Sprintf("shard %d: read timestamp %v behind GC watermark %v",
					s.cfg.ID, b.readTS, s.gcWM),
			})
			delete(s.progState, b.qid)
			continue
		}
		s.runBatch(b)
	}
	s.pending = remaining
}

// snapshotStale reports whether a read at ts can no longer be answered
// exactly: the GC watermark has passed it, so versions whose lifetime
// ended between ts and the watermark — exactly the ones ts should still
// see — may be collected. Reads at or after the watermark are always
// exact; ordinary (fresh-timestamp) programs can never be stale because
// their coordinator holds its gatekeeper's watermark report below them
// while they run.
func (s *Shard) snapshotStale(ts core.Timestamp) bool {
	if s.gcWM.Zero() {
		return false // no collection has happened; all history resident
	}
	// Pointwise, not happens-before: the watermark is a PointwiseMin
	// combination whose owner is arbitrary, so it is often Concurrent
	// with timestamps it is componentwise-equal or -below. Every
	// collected version ended strictly vector-below the watermark, hence
	// is invisible to any reader the watermark is pointwise-≤.
	return !s.gcWM.PointwiseLE(ts)
}

// progReady reports whether every transaction this shard could still
// execute is strictly after ts: each queue is empty with its frontier past
// ts, or its head (hence everything behind it) is vclock-after ts.
func (s *Shard) progReady(ts core.Timestamp) bool {
	for gk := range s.queues {
		if len(s.queues[gk]) > 0 {
			if ts.Compare(s.queues[gk][0].ts) != core.Before {
				return false
			}
			continue
		}
		f := s.frontier[gk]
		if f.Zero() || ts.Compare(f) != core.Before {
			return false
		}
	}
	return true
}

// visible builds the snapshot predicate for a node program at ts: a version
// written at w is visible iff w happened before ts, resolving concurrent
// pairs with the write-before-read preference (§4.1: for fresh pairs "the
// oracle will prefer arrival order … always ordering node programs after
// transactions"), so programs never miss updates from transactions that
// committed before they ran.
//
// The concurrent case needs no oracle round trip: read events never
// acquire out-edges in the dependency DAG — nothing in the protocol ever
// orders a transaction AFTER a node program (AssignOrder and head-ordering
// queries only ever relate transactions; programs appear only as the
// second argument of a Before-preferring query) — so the oracle's answer
// for (write, program) is deterministically Before. Short-circuiting it
// locally keeps every shard off the oracle mutex on the read path, which
// is what lets historical readers at pinned snapshots run without
// degrading write throughput (the DAG grows while a pin is held, and
// serializing reads on it would convoy the whole cluster).
func (s *Shard) visible(progTS core.Timestamp) graph.Before {
	return func(w core.Timestamp) bool {
		switch w.Compare(progTS) {
		case core.Before:
			return true
		case core.After, core.Equal:
			return false
		}
		s.readRefines.Add(1)
		return true
	}
}

// runBatch executes a batch of hops and their local cascade, forwards
// remote hops, and reports the delta to the coordinator.
func (s *Shard) runBatch(b *hopBatch) {
	s.progBatches.Add(1)
	view := s.g.At(s.visible(b.readTS))

	states := s.progState[b.qid]
	if states == nil {
		states = make(map[graph.VertexID][]byte)
		s.progState[b.qid] = states
	}

	work := append([]wire.Hop(nil), b.hops...)
	consumed := make([]uint64, 0, len(b.hops))
	for _, h := range b.hops {
		consumed = append(consumed, h.ID)
	}
	var results [][]byte
	remote := make(map[int][]wire.Hop)
	visits := 0
	// Heat attribution (§4.6): every visit warms its vertex; a visit whose
	// hop arrived from another shard warms it more (that hop is the
	// cross-partition traffic repartitioning wants to eliminate). Credits
	// accumulate locally and flush in one lock acquisition per batch —
	// BEFORE the batch's delta leaves the shard, so a migration that
	// drains programs and then evicts a vertex's heat cannot be overtaken
	// by a late flush resurrecting the entry on the source shard.
	credits := make(map[graph.VertexID]float64)
	flushHeat := func() {
		s.heat.addMany(credits)
		credits = nil
	}
	fail := func(err error) {
		flushHeat()
		s.ep.Send(b.coordinator, wire.ProgDelta{QID: b.qid, Err: err.Error()})
		delete(s.progState, b.qid)
	}
	for len(work) > 0 {
		if visits >= s.cfg.MaxCascade {
			fail(fmt.Errorf("shard %d: node program %v exceeded cascade limit %d", s.cfg.ID, b.qid, s.cfg.MaxCascade))
			return
		}
		hop := work[len(work)-1]
		work = work[:len(work)-1]
		visits++
		s.progVisits.Add(1)
		credits[hop.Vertex] += heatVisit
		if hop.Origin >= 0 && hop.Origin != s.cfg.ID {
			credits[hop.Vertex] += heatRemoteHop
		}

		p, found := s.reg.Get(hop.Program)
		if !found {
			fail(fmt.Errorf("shard %d: unknown node program %q", s.cfg.ID, hop.Program))
			return
		}
		vv, ok := view.Vertex(hop.Vertex)
		if !ok && s.pager != nil && !s.g.Has(hop.Vertex) {
			// Demand paging, fault half (§6.1): the vertex may have
			// been evicted; reload its committed record.
			if s.pageIn(hop.Vertex) {
				vv, _ = view.Vertex(hop.Vertex)
			}
		}
		ctx := &nodeprog.Context{
			Query:    b.qid,
			TS:       b.readTS,
			VertexID: hop.Vertex,
			Vertex:   vv,
			State:    states[hop.Vertex],
			Params:   hop.Params,
		}
		res, err := p.Visit(ctx)
		if err != nil {
			fail(fmt.Errorf("shard %d: program %q at %q: %v", s.cfg.ID, hop.Program, hop.Vertex, err))
			return
		}
		if res.State != nil {
			states[hop.Vertex] = res.State
		}
		if res.Return != nil {
			results = append(results, res.Return)
		}
		for _, nh := range res.Hops {
			nextProg := nh.Program
			if nextProg == "" {
				nextProg = hop.Program
			}
			if tgt := s.dir.Lookup(nh.Vertex); tgt != s.cfg.ID {
				// Remote hops get unique IDs (shard index in the
				// high bits) for the coordinator's spawn/consume
				// matching.
				id := s.hopSeq.Add(1) | uint64(s.cfg.ID+1)<<48
				remote[tgt] = append(remote[tgt], wire.Hop{ID: id, Vertex: nh.Vertex, Program: nextProg, Params: nh.Params, Origin: s.cfg.ID})
			} else {
				// Local cascade: executed in this batch, no ID needed.
				work = append(work, wire.Hop{Vertex: nh.Vertex, Program: nextProg, Params: nh.Params, Origin: s.cfg.ID})
			}
		}
	}

	flushHeat()
	var spawnedIDs []uint64
	for tgt, hops := range remote {
		for _, h := range hops {
			spawnedIDs = append(spawnedIDs, h.ID)
		}
		s.ep.Send(transport.ShardAddr(tgt), wire.ProgHops{
			QID:         b.qid,
			TS:          b.ts,
			ReadTS:      b.readTS,
			Coordinator: b.coordinator,
			Hops:        hops,
			Trace:       b.trace,
		})
	}
	if err := s.ep.Send(b.coordinator, wire.ProgDelta{
		QID:         b.qid,
		ConsumedIDs: consumed,
		SpawnedIDs:  spawnedIDs,
		Results:     results,
		Trace:       b.trace,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "weaver shard %d: delta to %s: %v\n", s.cfg.ID, b.coordinator, err)
	}
}
