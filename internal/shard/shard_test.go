package shard

import (
	"fmt"
	"testing"
	"time"

	"weaver/internal/core"
	"weaver/internal/graph"
	"weaver/internal/nodeprog"
	"weaver/internal/oracle"
	"weaver/internal/partition"
	"weaver/internal/transport"
	"weaver/internal/wire"
)

// rig builds a shard with a driver endpoint acting as gatekeeper 0 (and
// coordinator) plus helpers to feed it messages.
type rig struct {
	t     *testing.T
	sh    *Shard
	drv   transport.Endpoint
	orc   oracle.Client
	clock *core.VectorClock
	seq   *transport.Sequencer
}

func newRig(t *testing.T, gks int) *rig {
	t.Helper()
	f := transport.NewFabric()
	orc := oracle.NewService()
	sh := New(Config{ID: 0, NumGatekeepers: gks},
		f.Endpoint(transport.ShardAddr(0)), orc, nodeprog.NewRegistry(), partition.NewHash(1))
	sh.Start()
	t.Cleanup(sh.Stop)
	return &rig{
		t:     t,
		sh:    sh,
		drv:   f.Endpoint(transport.GatekeeperAddr(0)),
		orc:   orc,
		clock: core.NewVectorClock(0, gks, 0),
		seq:   transport.NewSequencer(),
	}
}

func (r *rig) sendTx(ops ...graph.Op) core.Timestamp {
	ts := r.clock.Tick()
	r.drv.Send(transport.ShardAddr(0), wire.TxForward{TS: ts, Seq: r.seq.Next(transport.ShardAddr(0)), Ops: ops})
	return ts
}

func (r *rig) sendNop() core.Timestamp {
	ts := r.clock.Tick()
	r.drv.Send(transport.ShardAddr(0), wire.Nop{TS: ts, Seq: r.seq.Next(transport.ShardAddr(0))})
	return ts
}

func (r *rig) waitStats(cond func(Stats) bool) Stats {
	r.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := r.sh.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			r.t.Fatalf("condition never met; stats %+v", st)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestShardAppliesSingleGKInOrder(t *testing.T) {
	r := newRig(t, 1)
	r.sendTx(graph.Op{Kind: graph.OpCreateVertex, Vertex: "a"})
	r.sendTx(graph.Op{Kind: graph.OpSetVertexProp, Vertex: "a", Key: "k", Value: "1"})
	r.sendNop()
	st := r.waitStats(func(s Stats) bool { return s.TxExecuted >= 2 })
	if st.ApplyErrors != 0 {
		t.Fatalf("apply errors: %+v", st)
	}
	if r.sh.Graph().NumVertices() != 1 {
		t.Fatal("vertex missing")
	}
}

// Out-of-order sequence numbers must be resequenced before execution: an
// op stream [create, set-prop] delivered as [set-prop, create] must still
// apply in order.
func TestShardResequencesOutOfOrder(t *testing.T) {
	r := newRig(t, 1)
	ts1 := r.clock.Tick()
	ts2 := r.clock.Tick()
	addr := transport.ShardAddr(0)
	seq1 := r.seq.Next(addr)
	seq2 := r.seq.Next(addr)
	// Deliver the second message first.
	r.drv.Send(addr, wire.TxForward{TS: ts2, Seq: seq2, Ops: []graph.Op{{Kind: graph.OpSetVertexProp, Vertex: "a", Key: "k", Value: "1"}}})
	time.Sleep(2 * time.Millisecond)
	if st := r.sh.Stats(); st.TxExecuted != 0 {
		t.Fatalf("executed before gap filled: %+v", st)
	}
	r.drv.Send(addr, wire.TxForward{TS: ts1, Seq: seq1, Ops: []graph.Op{{Kind: graph.OpCreateVertex, Vertex: "a"}}})
	st := r.waitStats(func(s Stats) bool { return s.TxExecuted >= 2 })
	if st.ApplyErrors != 0 {
		t.Fatalf("resequencing failed: %+v", st)
	}
}

// With two gatekeepers, a transaction from gk0 cannot execute until gk1's
// frontier passes it.
func TestShardWaitsForOtherGatekeepers(t *testing.T) {
	f := transport.NewFabric()
	orc := oracle.NewService()
	sh := New(Config{ID: 0, NumGatekeepers: 2},
		f.Endpoint(transport.ShardAddr(0)), orc, nodeprog.NewRegistry(), partition.NewHash(1))
	sh.Start()
	t.Cleanup(sh.Stop)

	gk0 := f.Endpoint(transport.GatekeeperAddr(0))
	gk1 := f.Endpoint(transport.GatekeeperAddr(1))
	c0 := core.NewVectorClock(0, 2, 0)
	c1 := core.NewVectorClock(1, 2, 0)

	ts := c0.Tick()
	gk0.Send(transport.ShardAddr(0), wire.TxForward{TS: ts, Seq: 1, Ops: []graph.Op{{Kind: graph.OpCreateVertex, Vertex: "a"}}})
	time.Sleep(3 * time.Millisecond)
	if st := sh.Stats(); st.TxExecuted != 0 {
		t.Fatalf("executed without hearing from gk1: %+v", st)
	}
	// gk1 observes gk0's clock and nops past it.
	c1.Observe(c0.Peek())
	gk1.Send(transport.ShardAddr(0), wire.Nop{TS: c1.Tick(), Seq: 1})
	deadline := time.Now().Add(3 * time.Second)
	for sh.Stats().TxExecuted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tx never executed: %+v", sh.Stats())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestShardRunsProgramAfterReadiness(t *testing.T) {
	r := newRig(t, 1)
	r.sendTx(graph.Op{Kind: graph.OpCreateVertex, Vertex: "v"})
	progTS := r.clock.Tick()
	r.drv.Send(transport.ShardAddr(0), wire.ProgStart{
		QID: progTS.ID(), TS: progTS, Prog: "get_node",
		Hops:        []wire.Hop{{ID: 1, Vertex: "v", Program: "get_node"}},
		Coordinator: r.drv.Addr(),
	})
	time.Sleep(2 * time.Millisecond)
	if st := r.sh.Stats(); st.ProgVisits != 0 {
		t.Fatal("program ran before frontier passed its timestamp")
	}
	r.sendNop() // frontier passes progTS
	// Expect a delta back.
	deadline := time.After(3 * time.Second)
	for {
		select {
		case <-r.drv.Recv():
			for {
				m, ok := r.drv.Next()
				if !ok {
					break
				}
				if d, isDelta := m.Payload.(wire.ProgDelta); isDelta {
					if len(d.ConsumedIDs) != 1 || d.ConsumedIDs[0] != 1 || len(d.Results) != 1 {
						t.Fatalf("unexpected delta %+v", d)
					}
					return
				}
			}
		case <-deadline:
			t.Fatalf("no delta; stats %+v", r.sh.Stats())
		}
	}
}

func TestShardDropsHopsForFinishedQueries(t *testing.T) {
	r := newRig(t, 1)
	r.sendTx(graph.Op{Kind: graph.OpCreateVertex, Vertex: "v"})
	progTS := r.clock.Tick()
	qid := progTS.ID()
	r.drv.Send(transport.ShardAddr(0), wire.ProgFinish{QID: qid})
	time.Sleep(time.Millisecond)
	r.drv.Send(transport.ShardAddr(0), wire.ProgStart{
		QID: qid, TS: progTS, Prog: "get_node",
		Hops:        []wire.Hop{{ID: 1, Vertex: "v", Program: "get_node"}},
		Coordinator: r.drv.Addr(),
	})
	r.sendNop()
	r.sendNop()
	time.Sleep(5 * time.Millisecond)
	if st := r.sh.Stats(); st.ProgVisits != 0 {
		t.Fatalf("finished query still executed: %+v", st)
	}
}

func TestShardGCCollectsOldVersions(t *testing.T) {
	r := newRig(t, 1)
	r.sendTx(graph.Op{Kind: graph.OpCreateVertex, Vertex: "v"})
	r.sendTx(graph.Op{Kind: graph.OpSetVertexProp, Vertex: "v", Key: "k", Value: "1"})
	r.sendTx(graph.Op{Kind: graph.OpSetVertexProp, Vertex: "v", Key: "k", Value: "2"})
	r.waitStats(func(s Stats) bool { return s.TxExecuted >= 3 })
	// Report a watermark past everything: the superseded "1" version goes.
	r.drv.Send(transport.ShardAddr(0), wire.GCReport{GK: 0, TS: r.clock.Tick()})
	st := r.waitStats(func(s Stats) bool { return s.GCCollected >= 1 })
	if st.GCCollected != 1 {
		t.Fatalf("collected %d, want 1", st.GCCollected)
	}
}

func TestShardRetainSkipsGC(t *testing.T) {
	f := transport.NewFabric()
	sh := New(Config{ID: 0, NumGatekeepers: 1, Retain: true},
		f.Endpoint(transport.ShardAddr(0)), oracle.NewService(), nodeprog.NewRegistry(), partition.NewHash(1))
	sh.Start()
	t.Cleanup(sh.Stop)
	drv := f.Endpoint(transport.GatekeeperAddr(0))
	clock := core.NewVectorClock(0, 1, 0)
	drv.Send(transport.ShardAddr(0), wire.TxForward{TS: clock.Tick(), Seq: 1, Ops: []graph.Op{{Kind: graph.OpCreateVertex, Vertex: "v"}}})
	drv.Send(transport.ShardAddr(0), wire.GCReport{GK: 0, TS: clock.Tick()})
	time.Sleep(5 * time.Millisecond)
	if st := sh.Stats(); st.GCCollected != 0 {
		t.Fatalf("retain mode collected %d", st.GCCollected)
	}
}

func TestShardEnterEpochResetsStreams(t *testing.T) {
	r := newRig(t, 1)
	r.sendTx(graph.Op{Kind: graph.OpCreateVertex, Vertex: "a"})
	r.waitStats(func(s Stats) bool { return s.TxExecuted >= 1 })
	r.sh.EnterEpoch(1)
	// New epoch: sequence numbering restarts at 1.
	r.clock.AdvanceEpoch(1)
	r.seq.Reset()
	r.sendTx(graph.Op{Kind: graph.OpCreateVertex, Vertex: "b"})
	st := r.waitStats(func(s Stats) bool { return s.TxExecuted >= 2 })
	if st.ApplyErrors != 0 {
		t.Fatalf("epoch reset broke the stream: %+v", st)
	}
}

// A transaction whose timestamp a peer gatekeeper's frontier never passed
// (no announce/NOP exchanged) is queued-unexecutable; the §4.3 epoch
// barrier must still execute it, because no more old-epoch traffic can
// ever arrive and gatekeepers reset their apply accounting at the bump.
func TestShardEnterEpochExecutesStalledQueue(t *testing.T) {
	f := transport.NewFabric()
	sh := New(Config{ID: 0, NumGatekeepers: 2},
		f.Endpoint(transport.ShardAddr(0)), oracle.NewService(), nodeprog.NewRegistry(), partition.NewHash(1))
	sh.Start()
	t.Cleanup(sh.Stop)
	gk0 := f.Endpoint(transport.GatekeeperAddr(0))
	gk1 := f.Endpoint(transport.GatekeeperAddr(1))
	c0 := core.NewVectorClock(0, 2, 0)
	c1 := core.NewVectorClock(1, 2, 0)
	// gk1's frontier is concurrent with gk0's transaction and never
	// advances past it.
	gk1.Send(transport.ShardAddr(0), wire.Nop{TS: c1.Tick(), Seq: 1})
	gk0.Send(transport.ShardAddr(0), wire.TxForward{TS: c0.Tick(), Seq: 1,
		Ops: []graph.Op{{Kind: graph.OpCreateVertex, Vertex: "stalled"}}})
	time.Sleep(3 * time.Millisecond)
	if st := sh.Stats(); st.TxExecuted != 0 {
		t.Fatalf("tx executed without ordering evidence: %+v", st)
	}
	sh.EnterEpoch(1)
	if st := sh.Stats(); st.TxExecuted != 1 || st.ApplyErrors != 0 {
		t.Fatalf("barrier left the queue stalled: %+v", st)
	}
	if !sh.Graph().Has("stalled") {
		t.Fatal("queued transaction not applied at the barrier")
	}
}

// The heat table must stay bounded even when no rebalancer ever decays it:
// churn over many distinct vertices hard-caps at heatMaxEntries.
func TestHeatMapBounded(t *testing.T) {
	h := newHeatMap()
	for i := 0; i < heatMaxEntries+heatMaxEntries/2; i++ {
		h.addOps([]graph.Op{{Kind: graph.OpSetVertexProp, Vertex: graph.VertexID(fmt.Sprintf("v%d", i))}})
	}
	if n := len(h.topK(0, 0)); n > heatMaxEntries {
		t.Fatalf("heat table grew to %d entries (cap %d)", n, heatMaxEntries)
	}
}
