package shard

import (
	"sync"

	"weaver/internal/core"
	"weaver/internal/graph"
	"weaver/internal/transport"
	"weaver/internal/wire"
)

// Conflict-aware parallel transaction execution. Refinable timestamps only
// constrain the order of *conflicting* transactions (§4.1–4.2): once the
// head-of-queue ordering logic has proven a transaction executable, any
// further executable transaction whose vertex footprint is disjoint from
// everything already selected can run concurrently with it — the result is
// indistinguishable from executing the batch in timestamp order, because
// disjoint-footprint apply operations commute and every write lands in the
// multi-version store stamped with its own timestamp. Conflicting
// transactions are never batched together, so they still apply in
// timestamp order across batches.
//
// The event loop selects a batch, hands it to a fixed worker pool, and
// blocks until the whole batch has applied (a barrier). The barrier keeps
// the rest of the shard single-threaded: node programs, epoch changes, and
// GC only ever run between batches, so the multi-version store is read
// only when no apply is in flight (the contract graph.Store.Apply
// documents).

// selectBatch pops every currently-executable queue head whose footprint
// is disjoint from the batch so far, up to max transactions. A head that
// conflicts with the batch stays queued — and because executable()
// compares candidates against the live queue heads, nothing that must
// order after a blocked head can slip into the batch past it.
func (s *Shard) selectBatch(max int) []queued {
	var batch []queued
	// Footprint tracking only pays for itself when a batch can hold more
	// than one transaction; the serial path (max == 1) skips it entirely,
	// and allocation waits for the first pop so the empty selectBatch call
	// ending every pump costs nothing.
	var fp graph.Footprint
	for {
		picked := false
		for gk := range s.queues {
			for len(s.queues[gk]) > 0 && len(batch) < max {
				h := s.queues[gk][0]
				if fp.OverlapsOps(h.ops) || !s.executable(h.ts, gk) {
					break
				}
				s.queues[gk] = s.queues[gk][1:]
				if max > 1 {
					if fp == nil {
						fp = make(graph.Footprint)
					}
					fp.AddOps(h.ops)
				}
				batch = append(batch, h)
				picked = true
			}
		}
		if !picked || len(batch) >= max {
			return batch
		}
	}
}

// applyBatch executes one batch: inline when it is a single transaction or
// the pool is disabled, otherwise fanned out to the worker pool with a
// completion barrier. Acknowledgement is the caller's job (pump and
// drainAllQueued coalesce acks across the whole drain via ackSet).
func (s *Shard) applyBatch(batch []queued) {
	s.applyBatches.Add(1)
	s.m.batchTx.Observe(uint64(len(batch)))
	if n := uint64(len(batch)); n > s.maxBatchTx.Load() {
		s.maxBatchTx.Store(n)
	}
	if len(batch) > 1 && s.pool != nil {
		var wg sync.WaitGroup
		wg.Add(len(batch))
		for _, q := range batch {
			s.pool.submit(applyJob{q: q, wg: &wg})
		}
		wg.Wait()
	} else {
		for _, q := range batch {
			s.apply(q)
		}
	}
}

// ackSet accumulates apply acknowledgements per owning gatekeeper across
// one event-loop drain, so the hot path pays one counted TxApplied per
// (drain, gatekeeper) rather than one per transaction — acks are counted,
// not sequenced, so coalescing loses nothing. All queued traffic shares
// one epoch (epoch changes happen at full-drain barriers), so any member
// timestamp carries the right epoch for the owner's epoch-scoped
// accounting.
type ackSet map[int]ownerAck

type ownerAck struct {
	ts core.Timestamp
	n  int
}

func (a *ackSet) add(batch []queued) {
	if *a == nil {
		*a = make(ackSet, 2)
	}
	for _, q := range batch {
		oa := (*a)[q.ts.Owner]
		oa.ts, oa.n = q.ts, oa.n+1
		(*a)[q.ts.Owner] = oa
	}
}

func (a ackSet) flush(s *Shard) {
	for owner, oa := range a {
		s.ep.Send(transport.GatekeeperAddr(owner), wire.TxApplied{TS: oa.ts, Shard: s.cfg.ID, Count: oa.n})
	}
}

type applyJob struct {
	q  queued
	wg *sync.WaitGroup
}

// workerPool is a fixed set of apply goroutines fed over a channel. It
// exists for the lifetime of the shard; the per-batch barrier lives in
// applyBatch, not here.
type workerPool struct {
	jobs     chan applyJob
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// newWorkerPool starts n apply workers for s.
func newWorkerPool(s *Shard, n int) *workerPool {
	p := &workerPool{jobs: make(chan applyJob, n*2)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				s.apply(job.q)
				job.wg.Done()
			}
		}()
	}
	return p
}

func (p *workerPool) submit(j applyJob) { p.jobs <- j }

// stop ends the workers; idempotent, since Shard.Stop may run more than
// once (failure injection then Close). Callers must ensure no batch is in
// flight (the event loop has exited).
func (p *workerPool) stop() {
	p.stopOnce.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}
