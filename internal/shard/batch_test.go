package shard

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"weaver/internal/core"
	"weaver/internal/graph"
	"weaver/internal/nodeprog"
	"weaver/internal/oracle"
	"weaver/internal/partition"
	"weaver/internal/transport"
	"weaver/internal/wire"
)

// newBareShard builds a shard whose event loop is NOT started, so tests
// can drive selectBatch directly against hand-loaded queues.
func newBareShard(t *testing.T, gks, workers int) *Shard {
	t.Helper()
	f := transport.NewFabric()
	s := New(Config{ID: 0, NumGatekeepers: gks, Workers: workers},
		f.Endpoint(transport.ShardAddr(0)), oracle.NewService(), nodeprog.NewRegistry(), partition.NewHash(1))
	return s
}

// randTxOps builds ops over a small vertex universe so footprints collide
// often.
func randTxOps(r *rand.Rand, universe int) []graph.Op {
	n := 1 + r.Intn(3)
	ops := make([]graph.Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, graph.Op{
			Kind:   graph.OpSetVertexProp,
			Vertex: graph.VertexID(fmt.Sprintf("v%d", r.Intn(universe))),
			Key:    "k",
			Value:  "x",
		})
	}
	return ops
}

// TestSelectBatchNeverBatchesConflicts property-checks the conflict
// detector inside batch selection: across random multi-gatekeeper queue
// states, no two transactions with overlapping vertex footprints ever
// land in the same batch, every batch member was a popped queue head, and
// repeated selection drains every queue (no livelock).
func TestSelectBatchNeverBatchesConflicts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		gks := 1 + r.Intn(3)
		s := newBareShard(t, gks, 8)

		// Build one monotone stream per gatekeeper. Clocks observe each
		// other at random points, yielding a mix of ordered and
		// concurrent cross-gatekeeper pairs (concurrent pairs are refined
		// by the test's private oracle on demand, as in production).
		clocks := make([]*core.VectorClock, gks)
		for i := range clocks {
			clocks[i] = core.NewVectorClock(i, gks, 0)
		}
		total := 0
		for gk := 0; gk < gks; gk++ {
			n := 2 + r.Intn(8)
			for i := 0; i < n; i++ {
				if r.Intn(3) == 0 {
					clocks[gk].Observe(clocks[r.Intn(gks)].Peek())
				}
				ts := clocks[gk].Tick()
				s.queues[gk] = append(s.queues[gk], queued{ts: ts, ops: randTxOps(r, 4)})
				total++
			}
		}
		// Frontiers vclock-after every stream, as trailing NOPs from fully
		// synchronized clocks would set (otherwise a tx concurrent with a
		// fixed frontier could legitimately wait forever for more NOPs).
		for gk := 0; gk < gks; gk++ {
			for o := 0; o < gks; o++ {
				clocks[gk].Observe(clocks[o].Peek())
			}
		}
		for gk := 0; gk < gks; gk++ {
			s.frontier[gk] = clocks[gk].Tick()
		}

		seenBatches := 0
		drained := 0
		for {
			batch := s.selectBatch(256)
			if len(batch) == 0 {
				break
			}
			seenBatches++
			drained += len(batch)
			// Core property: pairwise-disjoint vertex footprints.
			fp := make(graph.Footprint)
			for _, q := range batch {
				if fp.OverlapsOps(q.ops) {
					t.Fatalf("trial %d: conflicting transactions batched together: %v", trial, batch)
				}
				fp.AddOps(q.ops)
			}
			if drained < total && seenBatches > total {
				t.Fatalf("trial %d: selection not making progress", trial)
			}
		}
		if drained != total {
			t.Fatalf("trial %d: drained %d of %d transactions", trial, drained, total)
		}
	}
}

// TestSelectBatchKeepsConflictOrder checks that two conflicting
// transactions from different gatekeepers are split across batches in
// their refined timestamp order: the batch sequence applied serially must
// equal the order the shard's own order() relation dictates.
func TestSelectBatchKeepsConflictOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		gks := 2 + r.Intn(2)
		s := newBareShard(t, gks, 8)
		clocks := make([]*core.VectorClock, gks)
		for i := range clocks {
			clocks[i] = core.NewVectorClock(i, gks, 0)
		}
		type labeled struct {
			ts core.Timestamp
			v  graph.VertexID
		}
		var all []labeled
		for gk := 0; gk < gks; gk++ {
			n := 2 + r.Intn(6)
			for i := 0; i < n; i++ {
				if r.Intn(4) == 0 {
					clocks[gk].Observe(clocks[r.Intn(gks)].Peek())
				}
				ts := clocks[gk].Tick()
				v := graph.VertexID(fmt.Sprintf("v%d", r.Intn(2))) // tiny universe: heavy conflicts
				s.queues[gk] = append(s.queues[gk], queued{ts: ts, ops: []graph.Op{{Kind: graph.OpSetVertexProp, Vertex: v, Key: "k"}}})
				all = append(all, labeled{ts, v})
			}
		}
		for gk := 0; gk < gks; gk++ {
			for o := 0; o < gks; o++ {
				clocks[gk].Observe(clocks[o].Peek())
			}
		}
		for gk := 0; gk < gks; gk++ {
			s.frontier[gk] = clocks[gk].Tick()
		}
		// Execute batch by batch, recording a global position per tx.
		pos := make(map[core.ID]int)
		next := 0
		for {
			batch := s.selectBatch(256)
			if len(batch) == 0 {
				break
			}
			for _, q := range batch {
				pos[q.ts.ID()] = next
			}
			next++ // same batch = same position (unordered within)
		}
		if len(pos) != len(all) {
			t.Fatalf("trial %d: drained %d of %d transactions", trial, len(pos), len(all))
		}
		// Conflicting pairs must be ordered across batches consistently
		// with the shard's order relation (vector clock + cached oracle).
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				a, b := all[i], all[j]
				if a.v != b.v {
					continue
				}
				pa, pb := pos[a.ts.ID()], pos[b.ts.ID()]
				if pa == pb {
					t.Fatalf("trial %d: conflicting txs %v and %v share a batch", trial, a.ts, b.ts)
				}
				switch s.order(a.ts, b.ts) {
				case core.Before:
					if pa > pb {
						t.Fatalf("trial %d: %v before %v but applied after", trial, a.ts, b.ts)
					}
				case core.After:
					if pb > pa {
						t.Fatalf("trial %d: %v before %v but applied after", trial, b.ts, a.ts)
					}
				}
			}
		}
	}
}

// TestShardParallelApplyMatchesSerial runs the same transaction stream
// through a serial shard and a parallel shard and checks the resulting
// stats and graph agree — an end-to-end check that the worker pool applies
// everything exactly once.
func TestShardParallelApplyMatchesSerial(t *testing.T) {
	run := func(workers int) Stats {
		f := transport.NewFabric()
		sh := New(Config{ID: 0, NumGatekeepers: 1, Workers: workers},
			f.Endpoint(transport.ShardAddr(0)), oracle.NewService(), nodeprog.NewRegistry(), partition.NewHash(1))
		sh.Start()
		defer sh.Stop()
		drv := f.Endpoint(transport.GatekeeperAddr(0))
		clock := core.NewVectorClock(0, 1, 0)
		seq := transport.NewSequencer()
		const txs = 200
		for i := 0; i < txs; i++ {
			v := graph.VertexID(fmt.Sprintf("v%d", i%50)) // 4 txs per vertex: real conflicts
			var ops []graph.Op
			if i < 50 {
				ops = append(ops, graph.Op{Kind: graph.OpCreateVertex, Vertex: v})
			}
			ops = append(ops, graph.Op{Kind: graph.OpSetVertexProp, Vertex: v, Key: "n", Value: fmt.Sprint(i)})
			drv.Send(transport.ShardAddr(0), wire.TxForward{TS: clock.Tick(), Seq: seq.Next(transport.ShardAddr(0)), Ops: ops})
		}
		deadline := time.Now().Add(5 * time.Second)
		for sh.Stats().TxExecuted < txs {
			if time.Now().After(deadline) {
				t.Fatalf("workers=%d: stalled at %+v", workers, sh.Stats())
			}
			time.Sleep(100 * time.Microsecond)
		}
		if n := sh.Graph().NumVertices(); n != 50 {
			t.Fatalf("workers=%d: %d vertices, want 50", workers, n)
		}
		return sh.Stats()
	}
	serial, parallel := run(0), run(8)
	if serial.TxExecuted != parallel.TxExecuted || serial.OpsApplied != parallel.OpsApplied {
		t.Fatalf("serial %+v != parallel %+v", serial, parallel)
	}
	if serial.ApplyErrors != 0 || parallel.ApplyErrors != 0 {
		t.Fatalf("apply errors: serial %+v parallel %+v", serial, parallel)
	}
}
