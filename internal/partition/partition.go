// Package partition implements Weaver's graph partitioning (§3.2, §4.6):
// the assignment of vertices to shard servers. The default is stateless
// hash partitioning. An LDG (Linear Deterministic Greedy) streaming
// partitioner [58, 48] is provided for locality-aware placement: it assigns
// each arriving vertex to the shard holding most of its neighbors, subject
// to a capacity penalty. The paper evaluates Weaver with locality-aware
// placement disabled (§4.6); this repo benchmarks it as an ablation.
package partition

import (
	"hash/fnv"
	"sync"

	"weaver/internal/graph"
)

// Directory resolves the home shard of a vertex. Implementations must be
// consistent across every server in the cluster.
type Directory interface {
	// Lookup returns the shard index owning v.
	Lookup(v graph.VertexID) int
	// N returns the number of shards.
	N() int
}

// Hash is the default stateless directory: shard = fnv64(v) mod n.
type Hash struct {
	n int
}

// NewHash returns a hash directory over n shards.
func NewHash(n int) *Hash {
	if n <= 0 {
		panic("partition: need at least one shard")
	}
	return &Hash{n: n}
}

// Lookup implements Directory.
func (h *Hash) Lookup(v graph.VertexID) int {
	f := fnv.New64a()
	f.Write([]byte(v))
	return int(f.Sum64() % uint64(h.n))
}

// N implements Directory.
func (h *Hash) N() int { return h.n }

// Mapped is an explicit vertex→shard table with a fallback for unknown
// vertices. It backs LDG placements and vertex migration: entries are
// written at load time (or on migration) and must be distributed to every
// server before use.
type Mapped struct {
	mu       sync.RWMutex
	table    map[graph.VertexID]int
	fallback Directory
}

// NewMapped returns an empty mapped directory with the given fallback.
func NewMapped(fallback Directory) *Mapped {
	return &Mapped{table: make(map[graph.VertexID]int), fallback: fallback}
}

// Assign pins v to shard.
func (m *Mapped) Assign(v graph.VertexID, shard int) {
	m.mu.Lock()
	m.table[v] = shard
	m.mu.Unlock()
}

// Lookup implements Directory.
func (m *Mapped) Lookup(v graph.VertexID) int {
	m.mu.RLock()
	s, ok := m.table[v]
	m.mu.RUnlock()
	if ok {
		return s
	}
	return m.fallback.Lookup(v)
}

// N implements Directory.
func (m *Mapped) N() int { return m.fallback.N() }

// LDG is the Linear Deterministic Greedy streaming partitioner: vertices
// arrive one at a time with their (currently known) neighbor lists, and
// each is placed on the shard maximizing |neighbors already there| × (1 −
// load/capacity). Ties break toward the least-loaded shard, making the
// stream deterministic.
type LDG struct {
	n        int
	capacity float64
	load     []int
	placed   map[graph.VertexID]int
}

// NewLDG returns a partitioner for n shards expecting approximately
// expectedVertices placements, with a slack factor (e.g. 0.1 allows each
// shard to hold 10% above the balanced share).
func NewLDG(n int, expectedVertices int, slack float64) *LDG {
	if n <= 0 {
		panic("partition: need at least one shard")
	}
	cap := (1.0 + slack) * float64(expectedVertices) / float64(n)
	if cap < 1 {
		cap = 1
	}
	return &LDG{n: n, capacity: cap, load: make([]int, n), placed: make(map[graph.VertexID]int)}
}

// NewLDGRebalance returns a partitioner primed for online repartitioning
// (§4.6): loads carries the current per-shard resident vertex counts, and
// capacity is sized from those plus the expectedMoves vertices about to be
// re-placed. Unlike NewLDG — which assumes an empty cluster filling up —
// this makes the capacity penalty reflect the shards as they are, so a
// re-placed vertex is pulled toward its neighbors without overloading an
// already-full shard.
func NewLDGRebalance(loads []int, expectedMoves int, slack float64) *LDG {
	n := len(loads)
	if n <= 0 {
		panic("partition: need at least one shard")
	}
	total := expectedMoves
	for _, l := range loads {
		total += l
	}
	cap := (1.0 + slack) * float64(total) / float64(n)
	if cap < 1 {
		cap = 1
	}
	l := &LDG{n: n, capacity: cap, load: make([]int, n), placed: make(map[graph.VertexID]int)}
	copy(l.load, loads)
	return l
}

// Seed pins an existing placement without charging load for it: the vertex
// is already counted in the loads the partitioner was constructed with.
// Rebalancing seeds the current homes of the vertices adjacent to the ones
// being re-placed, so Place scores candidate shards by where neighbors
// actually live today.
func (l *LDG) Seed(v graph.VertexID, shard int) {
	if shard < 0 || shard >= l.n {
		return
	}
	if _, ok := l.placed[v]; !ok {
		l.placed[v] = shard
	}
}

// Place assigns v given its neighbor list, returning the chosen shard.
// Re-placing a vertex returns its existing assignment.
func (l *LDG) Place(v graph.VertexID, neighbors []graph.VertexID) int {
	if s, ok := l.placed[v]; ok {
		return s
	}
	counts := make([]int, l.n)
	for _, nb := range neighbors {
		if s, ok := l.placed[nb]; ok {
			counts[s]++
		}
	}
	best, bestScore := 0, -1.0
	for s := 0; s < l.n; s++ {
		penalty := 1.0 - float64(l.load[s])/l.capacity
		if penalty < 0 {
			penalty = 0
		}
		score := float64(counts[s]) * penalty
		if score > bestScore || (score == bestScore && l.load[s] < l.load[best]) {
			best, bestScore = s, score
		}
	}
	l.placed[v] = best
	l.load[best]++
	return best
}

// Loads returns the per-shard vertex counts.
func (l *LDG) Loads() []int {
	out := make([]int, len(l.load))
	copy(out, l.load)
	return out
}

// Assignments copies the placement table into a Mapped directory.
func (l *LDG) Assignments(fallback Directory) *Mapped {
	m := NewMapped(fallback)
	for v, s := range l.placed {
		m.Assign(v, s)
	}
	return m
}

// EdgeCut counts edges whose endpoints land on different shards under dir —
// the quality metric for partitioners (lower is better).
func EdgeCut(dir Directory, edges [][2]graph.VertexID) int {
	cut := 0
	for _, e := range edges {
		if dir.Lookup(e[0]) != dir.Lookup(e[1]) {
			cut++
		}
	}
	return cut
}
