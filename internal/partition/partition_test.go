package partition

import (
	"fmt"
	"testing"

	"weaver/internal/graph"
	"weaver/internal/workload"
)

func TestHashDeterministicAndInRange(t *testing.T) {
	h := NewHash(5)
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	for i := 0; i < 1000; i++ {
		v := graph.VertexID(fmt.Sprintf("v%d", i))
		s := h.Lookup(v)
		if s < 0 || s >= 5 {
			t.Fatalf("out of range: %d", s)
		}
		if s != h.Lookup(v) {
			t.Fatal("not deterministic")
		}
	}
}

func TestHashBalance(t *testing.T) {
	h := NewHash(4)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[h.Lookup(graph.VertexID(fmt.Sprintf("v%d", i)))]++
	}
	for s, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("shard %d has %d of 40000 (imbalanced)", s, c)
		}
	}
}

func TestHashPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHash(0)
}

func TestMappedDirectory(t *testing.T) {
	m := NewMapped(NewHash(3))
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	def := m.Lookup("v")
	m.Assign("v", (def+1)%3)
	if m.Lookup("v") == def {
		t.Fatal("assignment ignored")
	}
	if m.Lookup("other") != NewHash(3).Lookup("other") {
		t.Fatal("fallback broken")
	}
}

func TestLDGBalanceBound(t *testing.T) {
	const n, shards = 3000, 4
	l := NewLDG(shards, n, 0.1)
	g := workload.Social(n, 4, 5)
	for _, v := range g.Vertices {
		l.Place(v, g.Out[v])
	}
	loads := l.Loads()
	nf, sf := float64(n), float64(shards)
	capacity := int(1.1*nf/sf) + 1
	total := 0
	for s, ld := range loads {
		total += ld
		// LDG soft-caps via the penalty; allow modest overflow.
		if ld > capacity*2 {
			t.Fatalf("shard %d load %d far exceeds capacity %d", s, ld, capacity)
		}
	}
	if total != n {
		t.Fatalf("placed %d of %d", total, n)
	}
}

func TestLDGBeatsHashOnClusteredGraph(t *testing.T) {
	// Build a graph of dense 32-vertex cliques with few cross-links: LDG
	// should colocate cliques and cut far fewer edges than hashing.
	const cliques, size, shards = 32, 32, 4
	var edges [][2]graph.VertexID
	adj := map[graph.VertexID][]graph.VertexID{}
	vid := func(c, i int) graph.VertexID { return graph.VertexID(fmt.Sprintf("c%d/v%d", c, i)) }
	for c := 0; c < cliques; c++ {
		for i := 0; i < size; i++ {
			for j := 0; j < 4; j++ {
				from, to := vid(c, i), vid(c, (i+j+1)%size)
				edges = append(edges, [2]graph.VertexID{from, to})
				adj[from] = append(adj[from], to)
				adj[to] = append(adj[to], from)
			}
		}
	}
	l := NewLDG(shards, cliques*size, 0.2)
	for c := 0; c < cliques; c++ {
		for i := 0; i < size; i++ {
			l.Place(vid(c, i), adj[vid(c, i)])
		}
	}
	ldgCut := EdgeCut(l.Assignments(NewHash(shards)), edges)
	hashCut := EdgeCut(NewHash(shards), edges)
	if ldgCut*2 > hashCut {
		t.Fatalf("LDG cut %d not clearly better than hash cut %d", ldgCut, hashCut)
	}
}

func TestLDGRePlaceStable(t *testing.T) {
	l := NewLDG(2, 10, 0.1)
	s1 := l.Place("v", nil)
	s2 := l.Place("v", []graph.VertexID{"a", "b"})
	if s1 != s2 {
		t.Fatal("re-placement must return original shard")
	}
	if got := l.Loads()[s1]; got != 1 {
		t.Fatalf("load double-counted: %d", got)
	}
}
