package workload

import (
	"math/rand"
	"testing"
)

func TestSocialGraphShape(t *testing.T) {
	g := Social(1000, 5, 42)
	if len(g.Vertices) != 1000 {
		t.Fatalf("vertices = %d", len(g.Vertices))
	}
	if len(g.Edges) < 3000 {
		t.Fatalf("too few edges: %d", len(g.Edges))
	}
	// Power-law check: max in-degree far exceeds average.
	indeg := map[string]int{}
	for _, e := range g.Edges {
		indeg[string(e.To)]++
	}
	max, sum := 0, 0
	for _, d := range indeg {
		sum += d
		if d > max {
			max = d
		}
	}
	avg := float64(sum) / float64(len(indeg))
	if float64(max) < 5*avg {
		t.Fatalf("degree distribution not skewed: max=%d avg=%.1f", max, avg)
	}
	// No self-loops.
	for _, e := range g.Edges {
		if e.From == e.To {
			t.Fatalf("self loop at %s", e.From)
		}
	}
}

func TestSocialDeterministic(t *testing.T) {
	a := Social(200, 3, 7)
	b := Social(200, 3, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("generator not deterministic")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRandomGraph(t *testing.T) {
	g := Random(500, 2000, 1)
	if len(g.Vertices) != 500 {
		t.Fatalf("vertices = %d", len(g.Vertices))
	}
	if len(g.Edges) < 1900 || len(g.Edges) > 2000 {
		t.Fatalf("edges = %d, want ~2000 (minus self-loop skips)", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.From == e.To {
			t.Fatal("self loop")
		}
	}
}

func TestTAOMixDistribution(t *testing.T) {
	m := TAOMix()
	r := rand.New(rand.NewSource(3))
	counts := map[OpKind]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[m.Sample(r)]++
	}
	reads := counts[OpGetEdges] + counts[OpCountEdges] + counts[OpGetNode]
	writes := counts[OpCreateEdge] + counts[OpDeleteEdge]
	readFrac := float64(reads) / float64(n)
	if readFrac < 0.995 || readFrac > 0.9999 {
		t.Fatalf("read fraction = %.4f, want ≈0.998", readFrac)
	}
	if writes == 0 {
		t.Fatal("writes never sampled")
	}
	// get_edges should dominate reads (59.4% of total).
	if f := float64(counts[OpGetEdges]) / float64(n); f < 0.55 || f > 0.65 {
		t.Fatalf("get_edges fraction = %.3f, want ≈0.594", f)
	}
}

func TestReadMix75(t *testing.T) {
	m := ReadMix(0.75)
	r := rand.New(rand.NewSource(4))
	reads, n := 0, 100000
	for i := 0; i < n; i++ {
		switch m.Sample(r) {
		case OpGetEdges, OpCountEdges, OpGetNode:
			reads++
		}
	}
	if f := float64(reads) / float64(n); f < 0.73 || f > 0.77 {
		t.Fatalf("read fraction = %.3f, want ≈0.75", f)
	}
}

func TestOpKindString(t *testing.T) {
	for _, k := range []OpKind{OpGetEdges, OpCountEdges, OpGetNode, OpCreateEdge, OpDeleteEdge} {
		if k.String() == "" {
			t.Fatal("empty op name")
		}
	}
}

func TestBlockchainGrowth(t *testing.T) {
	bc := NewBlockchain(500, 9)
	early, late := 0, 0
	for h := 0; h < 50; h++ {
		early += bc.TxsInBlock(h)
	}
	for h := 450; h < 500; h++ {
		late += bc.TxsInBlock(h)
	}
	if late < 3*early {
		t.Fatalf("late blocks (%d txs) should far exceed early blocks (%d txs)", late, early)
	}
}

func TestBlockchainGenerate(t *testing.T) {
	bc := NewBlockchain(100, 5)
	var blocks int
	var txs int
	seenTx := map[string]bool{}
	bc.Generate(func(bv BlockVertex) {
		blocks++
		if blocks > 1 && bv.Prev == "" {
			t.Fatal("non-genesis block missing prev link")
		}
		for _, tv := range bv.Txs {
			txs++
			if seenTx[string(tv.Tx)] {
				t.Fatalf("duplicate tx %s", tv.Tx)
			}
			seenTx[string(tv.Tx)] = true
			for _, in := range tv.Inputs {
				if !seenTx[string(in)] {
					t.Fatalf("tx %s spends unseen input %s", tv.Tx, in)
				}
			}
			if len(tv.Outputs) == 0 {
				t.Fatalf("tx %s has no outputs", tv.Tx)
			}
		}
	})
	if blocks != 100 {
		t.Fatalf("blocks = %d", blocks)
	}
	if txs != bc.Txs {
		t.Fatalf("generated %d txs, planned %d", txs, bc.Txs)
	}
}

func TestBlockchainDeterministic(t *testing.T) {
	collect := func() []string {
		bc := NewBlockchain(50, 11)
		var out []string
		bc.Generate(func(bv BlockVertex) {
			for _, tv := range bv.Txs {
				out = append(out, string(tv.Tx))
				for _, in := range tv.Inputs {
					out = append(out, string(in))
				}
			}
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}
