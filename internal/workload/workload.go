// Package workload generates the synthetic datasets and operation mixes
// used by the evaluation (§6), substituting for the paper's proprietary or
// oversized inputs while preserving the properties each experiment
// exercises:
//
//   - Blockchain: a deterministic Bitcoin-style transaction graph whose
//     blocks grow with height, standing in for the real blockchain
//     (§6.1, Figs 7-8 — the x-axis is block size, which we reproduce).
//   - Social: a preferential-attachment (power-law) digraph standing in
//     for the LiveJournal snapshot (§6.2, Figs 9-10 — degree skew is what
//     stresses the ordering path).
//   - Random: a uniform random digraph standing in for the Twitter
//     snapshots (§6.3-6.4, Figs 11-13 — traversal fan-out at reduced
//     scale).
//   - TAOMix: Facebook's TAO operation distribution (Table 1).
//
// All generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"

	"weaver/internal/graph"
)

// Edge is one directed edge in a generated graph.
type Edge struct {
	From, To graph.VertexID
}

// Graph is a generated dataset: vertex IDs and directed edges.
type Graph struct {
	Vertices []graph.VertexID
	Edges    []Edge
	// Out is the adjacency list (indices into Vertices are not used;
	// adjacency is by ID).
	Out map[graph.VertexID][]graph.VertexID
}

func newGraph(n int) *Graph {
	return &Graph{Out: make(map[graph.VertexID][]graph.VertexID, n)}
}

func (g *Graph) addVertex(v graph.VertexID) {
	g.Vertices = append(g.Vertices, v)
}

func (g *Graph) addEdge(from, to graph.VertexID) {
	g.Edges = append(g.Edges, Edge{From: from, To: to})
	g.Out[from] = append(g.Out[from], to)
}

// Social generates a directed preferential-attachment graph with n vertices
// and approximately m out-edges per vertex (Barabási–Albert flavor): new
// vertices attach to existing ones with probability proportional to their
// current in-degree, yielding the heavy-tailed degree distribution of real
// social networks.
func Social(n, m int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := newGraph(n)
	// targets is a repeated-vertex pool implementing preferential
	// attachment: vertices appear once per incident edge.
	targets := make([]graph.VertexID, 0, 2*n*m)
	for i := 0; i < n; i++ {
		v := graph.VertexID(fmt.Sprintf("user/%d", i))
		g.addVertex(v)
		k := m
		if i < m {
			k = i // early vertices connect to all predecessors
		}
		seen := make(map[graph.VertexID]bool, k)
		for j := 0; j < k; j++ {
			var to graph.VertexID
			if len(targets) == 0 {
				break
			}
			for tries := 0; tries < 8; tries++ {
				to = targets[r.Intn(len(targets))]
				if to != v && !seen[to] {
					break
				}
			}
			if to == v || seen[to] {
				continue
			}
			seen[to] = true
			g.addEdge(v, to)
			targets = append(targets, to)
		}
		targets = append(targets, v)
	}
	return g
}

// Random generates a uniform random digraph with n vertices and e edges
// between vertices chosen uniformly at random (§6.3: "reachability queries
// on a small Twitter graph … between vertices chosen uniformly at random").
func Random(n, e int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := newGraph(n)
	for i := 0; i < n; i++ {
		g.addVertex(graph.VertexID(fmt.Sprintf("node/%d", i)))
	}
	for i := 0; i < e; i++ {
		from := g.Vertices[r.Intn(n)]
		to := g.Vertices[r.Intn(n)]
		if from == to {
			continue
		}
		g.addEdge(from, to)
	}
	return g
}

// OpKind is one TAO operation (Table 1).
type OpKind int

// The TAO operations of Table 1.
const (
	OpGetEdges OpKind = iota
	OpCountEdges
	OpGetNode
	OpCreateEdge
	OpDeleteEdge
)

// String names the operation as in Table 1.
func (k OpKind) String() string {
	switch k {
	case OpGetEdges:
		return "get_edges"
	case OpCountEdges:
		return "count_edges"
	case OpGetNode:
		return "get_node"
	case OpCreateEdge:
		return "create_edge"
	case OpDeleteEdge:
		return "delete_edge"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Mix is an operation distribution: cumulative weights over OpKinds.
type Mix struct {
	kinds []OpKind
	cum   []float64
}

// NewMix builds a distribution from op→probability pairs (must sum to ~1).
func NewMix(weights map[OpKind]float64) Mix {
	var m Mix
	total := 0.0
	for _, k := range []OpKind{OpGetEdges, OpCountEdges, OpGetNode, OpCreateEdge, OpDeleteEdge} {
		w, ok := weights[k]
		if !ok || w <= 0 {
			continue
		}
		total += w
		m.kinds = append(m.kinds, k)
		m.cum = append(m.cum, total)
	}
	return m
}

// Sample draws one operation.
func (m Mix) Sample(r *rand.Rand) OpKind {
	x := r.Float64() * m.cum[len(m.cum)-1]
	for i, c := range m.cum {
		if x <= c {
			return m.kinds[i]
		}
	}
	return m.kinds[len(m.kinds)-1]
}

// TAOMix is the Facebook TAO workload of Table 1: 99.8% reads (get_edges
// 59.4%, count_edges 11.7%, get_node 28.9% of the read share) and 0.2%
// writes (create_edge 80%, delete_edge 20% of the write share).
func TAOMix() Mix {
	return NewMix(map[OpKind]float64{
		OpGetEdges:   0.998 * 0.594,
		OpCountEdges: 0.998 * 0.117,
		OpGetNode:    0.998 * 0.289,
		OpCreateEdge: 0.002 * 0.80,
		OpDeleteEdge: 0.002 * 0.20,
	})
}

// ReadMix is a workload with the given read fraction, using TAO's internal
// read and write proportions (used for the 75%-read benchmark of Fig 9b).
func ReadMix(readFraction float64) Mix {
	w := 1 - readFraction
	return NewMix(map[OpKind]float64{
		OpGetEdges:   readFraction * 0.594,
		OpCountEdges: readFraction * 0.117,
		OpGetNode:    readFraction * 0.289,
		OpCreateEdge: w * 0.80,
		OpDeleteEdge: w * 0.20,
	})
}
