package workload

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// Logger is the subset of testing.TB the seed helper needs (kept as a
// local interface so non-test packages can import workload without
// dragging in testing).
type Logger interface {
	Logf(format string, args ...any)
}

// TestSeed returns the seed a randomized test must use for ALL of its
// randomness: $WEAVER_TEST_SEED when set (replay mode), otherwise derived
// from the wall clock. The chosen value is written both to the test log
// and to stderr — stderr so CI logs always carry it, even when the runner
// swallows t.Logf output of passing tests — making any stress-suite
// failure replayable exactly:
//
//	WEAVER_TEST_SEED=12345 go test -race -run TestStrictSerializability .
//
// Tests must derive per-goroutine generators from this one seed (e.g.
// rand.NewSource(seed+int64(i))) instead of sharing a rand.Rand across
// goroutines or seeding from time themselves.
func TestSeed(l Logger) int64 {
	seed, from := int64(0), "wall clock"
	if env := os.Getenv("WEAVER_TEST_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("workload: bad WEAVER_TEST_SEED %q: %v", env, err))
		}
		seed, from = v, "$WEAVER_TEST_SEED"
	} else {
		seed = time.Now().UnixNano()
	}
	msg := fmt.Sprintf("test seed %d (from %s; replay with WEAVER_TEST_SEED=%d)", seed, from, seed)
	l.Logf("%s", msg)
	fmt.Fprintln(os.Stderr, "weaver:", msg)
	return seed
}
