package workload

import (
	"fmt"
	"math/rand"

	"weaver/internal/graph"
)

// Blockchain is a synthetic Bitcoin-style transaction graph (§5.2, §6.1).
// Vertices: blocks ("block/<h>"), transactions ("tx/<n>") and addresses
// ("addr/<n>"). Edges, labeled with a "kind" property:
//
//	block/h  -tx->   tx/n      (the block contains the transaction)
//	block/h  -prev-> block/h-1 (the chain)
//	tx/n     -in->   tx/m      (n spends an output of m)
//	tx/n     -out->  addr/a    (n pays address a)
//
// Block sizes grow with height, mirroring Bitcoin's history: the paper's
// Figs 7-8 plot per-block latency/throughput against block height, with
// cost proportional to transactions per block. TxsInBlock reproduces that
// growth curve deterministically.
type Blockchain struct {
	Blocks    int
	Txs       int
	Addresses int
	seed      int64
}

// BlockID is the vertex ID of block h.
func BlockID(h int) graph.VertexID { return graph.VertexID(fmt.Sprintf("block/%d", h)) }

// TxID is the vertex ID of transaction n.
func TxID(n int) graph.VertexID { return graph.VertexID(fmt.Sprintf("tx/%d", n)) }

// AddrID is the vertex ID of address n.
func AddrID(n int) graph.VertexID { return graph.VertexID(fmt.Sprintf("addr/%d", n)) }

// NewBlockchain plans a chain with the given number of blocks.
func NewBlockchain(blocks int, seed int64) *Blockchain {
	bc := &Blockchain{Blocks: blocks, seed: seed}
	for h := 0; h < blocks; h++ {
		bc.Txs += bc.TxsInBlock(h)
	}
	bc.Addresses = bc.Txs * 2
	return bc
}

// TxsInBlock returns the number of transactions in block h: a deterministic
// growth curve from 1 tx (genesis era) toward ~maxTx (modern blocks), like
// Bitcoin's block-size history scaled to the configured chain length.
func (bc *Blockchain) TxsInBlock(h int) int {
	const maxTx = 64
	frac := float64(h) / float64(bc.Blocks)
	n := 1 + int(frac*frac*maxTx)
	// Deterministic per-block jitter.
	j := (h*2654435761 + int(bc.seed)) % 7
	n += j
	if n < 1 {
		n = 1
	}
	return n
}

// BlockVertex describes one block's content for loading.
type BlockVertex struct {
	Block graph.VertexID
	Prev  graph.VertexID // empty for genesis
	Txs   []TxVertex
}

// TxVertex describes one transaction: its inputs (earlier txs whose outputs
// it spends) and output addresses.
type TxVertex struct {
	Tx      graph.VertexID
	Inputs  []graph.VertexID
	Outputs []graph.VertexID
}

// Generate materializes the chain block by block, calling emit for each.
// Deterministic for a given (blocks, seed).
func (bc *Blockchain) Generate(emit func(BlockVertex)) {
	r := rand.New(rand.NewSource(bc.seed))
	txSeq := 0
	addrSeq := 0
	for h := 0; h < bc.Blocks; h++ {
		bv := BlockVertex{Block: BlockID(h)}
		if h > 0 {
			bv.Prev = BlockID(h - 1)
		}
		n := bc.TxsInBlock(h)
		for i := 0; i < n; i++ {
			tv := TxVertex{Tx: TxID(txSeq)}
			// Inputs: 1-3 random earlier transactions (none for
			// coinbase-era txs).
			if txSeq > 0 {
				nin := 1 + r.Intn(3)
				for k := 0; k < nin; k++ {
					tv.Inputs = append(tv.Inputs, TxID(r.Intn(txSeq)))
				}
			}
			// Outputs: 1-3 addresses, mostly fresh.
			nout := 1 + r.Intn(3)
			for k := 0; k < nout; k++ {
				if addrSeq > 0 && r.Float64() < 0.3 {
					tv.Outputs = append(tv.Outputs, AddrID(r.Intn(addrSeq)))
				} else {
					tv.Outputs = append(tv.Outputs, AddrID(addrSeq))
					addrSeq++
				}
			}
			txSeq++
			bv.Txs = append(bv.Txs, tv)
		}
		emit(bv)
	}
	bc.Addresses = addrSeq
}
