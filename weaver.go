// Package weaver is a distributed, transactional property-graph database
// built on refinable timestamps, reproducing the system described in
// "Weaver: A High-Performance, Transactional Graph Database Based on
// Refinable Timestamps" (Dubey, Hill, Escriva, Sirer — VLDB 2016).
//
// A Cluster assembles the full system in one process: a bank of gatekeepers
// (vector-clock timestamping, transaction execution on the backing store),
// shard servers holding the in-memory multi-version graph, a timeline
// oracle refining concurrent timestamps, and a transactional backing store.
// Clients execute strictly serializable read-write transactions (Tx) and
// run node programs — traversal-style read-only queries that see a
// consistent snapshot of the graph at their timestamp.
//
// # Execution pipeline
//
// A committed transaction flows through three stages:
//
//  1. Commit (gatekeeper): a refinable timestamp is stamped, the write-set
//     is validated and applied to the transactional backing store (OCC),
//     and timestamp order is reconciled with commit order on conflicting
//     vertices — via the timeline oracle when vector clocks are
//     inconclusive (§4.2). When Tx.Commit returns, the transaction is
//     durable and totally ordered.
//  2. Forward: the write-set is split by home shard and streamed to the
//     involved shards over per-shard FIFO channels; uninvolved shards
//     receive a NOP advancing their frontier.
//  3. Apply (shard): each shard's event loop executes forwarded
//     transactions against its in-memory multi-version graph. Ordering is
//     enforced only between conflicting transactions: the loop selects the
//     earliest executable queue head, then keeps draining further
//     executable transactions with disjoint vertex footprints into one
//     batch, applied concurrently on a per-shard worker pool
//     (Config.ShardWorkers). Conflicting transactions always land in
//     separate batches and therefore apply in timestamp order. Shards
//     acknowledge each applied transaction to its gatekeeper; Quiesce
//     blocks until every forwarded write-set has been acknowledged — an
//     apply fence for benchmarks and tests that read shard state.
//
// Node programs wait until the shard has executed everything at or before
// their timestamp, then read the multi-version graph at that timestamp;
// parallel apply preserves this because programs only run at batch
// boundaries.
//
// # Durability, checkpoints, and bulk ingest
//
// Config.WALPath makes the backing store durable: commits are written to a
// group-committed write-ahead log (concurrent commits share fsyncs) before
// they are acknowledged. Cluster.Checkpoint snapshots the store into
// segmented, checksummed files (internal/snapshot) and truncates the log,
// so reopening replays only the tail written since — Cluster.RecoveryStats
// reports the bounded replay. A crash mid-checkpoint is safe: a torn
// snapshot fails validation and recovery falls back to the previous
// snapshot plus its complete log.
//
// Cluster.BulkLoad populates a cluster wholesale, bypassing the
// per-transaction commit path: the edge list streams through the LDG
// partitioner for locality-aware placement (when Config.Directory is a
// *partition.Mapped), per-shard segment builders encode vertex records on
// a worker pool (Config.BulkLoadWorkers, Config.SnapshotSegmentEntries),
// and the segments install directly into the backing store and the shard
// graphs, exactly as recovery would. One fresh timestamp stamps the whole
// load and every gatekeeper clock observes it, so all later transactions
// order after the load. On a durable cluster BulkLoad ends with an
// automatic Checkpoint — crash-safe ingest without a WAL record per
// commit.
//
// # Online repartitioning
//
// Shards track per-vertex heat (writes, node-program visits, cross-shard
// hops, decayed over time; Cluster.Heat). Cluster.MigrateBatch re-homes any
// number of vertices under one gatekeeper pause — commit the re-homed
// records in one backing-store transaction, move each vertex's full
// version history to the target, evict the source copies, repoint the
// directory — and a background rebalancer (Config.RebalanceInterval)
// feeds hot vertices through the LDG streaming partitioner to keep
// placement tracking the workload (§4.6).
//
// # Time-travel reads
//
// Because the graph is multi-versioned, any read-only query can run at a
// past timestamp while writes proceed (§4.5): Cluster.SnapshotTS mints a
// pinned, cluster-stable snapshot timestamp held against version GC until
// closed; Client.At wraps any timestamp from this cluster in a ReadClient
// whose node programs read the graph exactly as of that timestamp.
// Config.HistoryRetention keeps unpinned timestamps readable for a
// wall-clock window; reads behind the GC watermark fail with
// ErrStaleSnapshot, never wrong data. See timetravel.go.
//
// # Secondary indexes
//
// Config.Indexes declares property keys each shard indexes with a
// multiversion inverted index (internal/index): postings carry
// create/delete timestamps exactly like graph versions, so
// Client.Lookup/LookupRange answer "all vertices where key=value" (or a
// value range) as a strictly serializable snapshot read — and, through
// Client.At, as of any retained past timestamp. RunProgramWhere starts a
// node program from an index selector at one consistent snapshot. Index
// maintenance rides the transaction apply path under the same
// footprint-conflict contract; GC trims postings at the watermark that
// trims graph history, migration moves them with the version chains, and
// bulk ingest and recovery rebuild them from records. Postings stay
// resident when demand paging evicts a cold vertex's graph history —
// lookups answer for paged-out vertices without faulting them in, so
// Config.MaxShardVertices bounds graph memory only.
//
// Quick start:
//
//	c, _ := weaver.Open(weaver.Config{Gatekeepers: 2, Shards: 2})
//	defer c.Close()
//	cl := c.Client()
//	_, err := cl.RunTx(func(tx *weaver.Tx) error {
//	    tx.CreateVertex("alice")
//	    tx.CreateVertex("bob")
//	    e := tx.CreateEdge("alice", "bob")
//	    tx.SetEdgeProperty("alice", e, "kind", "follows")
//	    return nil
//	})
//	// ...
//	ids, _, _ := cl.Traverse("alice", "", "", 0)
package weaver

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"weaver/internal/cluster"
	"weaver/internal/core"
	"weaver/internal/gatekeeper"
	"weaver/internal/graph"
	"weaver/internal/index"
	"weaver/internal/kvstore"
	"weaver/internal/nodeprog"
	"weaver/internal/obs"
	"weaver/internal/oracle"
	"weaver/internal/partition"
	"weaver/internal/shard"
	"weaver/internal/transport"
	"weaver/internal/wire"
)

// Re-exported identifier types; applications use these to name graph
// objects.
type (
	// VertexID names a vertex, e.g. "user/42".
	VertexID = graph.VertexID
	// EdgeID names an edge. Inside an uncommitted transaction, edge IDs
	// returned by Tx.CreateEdge are placeholders rewritten at commit.
	EdgeID = graph.EdgeID
	// Timestamp is a refinable timestamp (vector clock + epoch).
	Timestamp = core.Timestamp
)

// ErrConflict is returned when a transaction lost a race with a concurrent
// conflicting transaction; re-running it (fresh reads) will usually
// succeed. Client.RunTx does this automatically.
var ErrConflict = gatekeeper.ErrConflict

// ErrInvalid wraps semantic transaction errors (creating an existing
// vertex, deleting a missing edge, …). Retrying will not help.
var ErrInvalid = gatekeeper.ErrInvalid

// ErrNoIndex is returned by Lookup/LookupRange/RunProgramWhere when the
// named property key has no secondary index (Config.Indexes). Match with
// errors.Is.
var ErrNoIndex = gatekeeper.ErrNoIndex

// IndexSpec declares one secondary property index (Config.Indexes): a
// per-shard multiversion inverted index over the named vertex property
// key, serving equality lookups and ordered range scans at any retained
// snapshot. See Client.Lookup and the package documentation.
type IndexSpec = index.Spec

// Config describes an in-process Weaver cluster.
type Config struct {
	// Gatekeepers is the number of timestamping servers (≥1).
	Gatekeepers int
	// Shards is the number of graph partition servers (≥1).
	Shards int
	// AnnouncePeriod is τ, the vector-clock exchange period between
	// gatekeepers (§3.3). Default 1ms. Smaller τ orders more transaction
	// pairs proactively; larger τ shifts work to the timeline oracle
	// (§6.5, Fig 14).
	AnnouncePeriod time.Duration
	// NopPeriod is how often gatekeepers send NOPs to shards, bounding
	// node-program delay (§4.2). Default 500µs.
	NopPeriod time.Duration
	// GCPeriod is the version garbage-collection cadence (§4.5).
	// Ignored when Retain is set. Default: disabled.
	GCPeriod time.Duration
	// Retain keeps the full multi-version history, enabling historical
	// queries at any past timestamp (§4.5; see Client.At).
	Retain bool
	// HistoryRetention keeps superseded versions readable for this
	// wall-clock window before garbage collection may reclaim them: a
	// historical read (Client.At) at any timestamp minted within the
	// window is guaranteed to succeed, and a read behind the GC
	// watermark fails with ErrStaleSnapshot instead of returning wrong
	// data. Pinned snapshots (Cluster.SnapshotTS) hold the watermark
	// regardless of this window. Only meaningful with GCPeriod > 0;
	// ignored under Retain (everything is kept forever).
	HistoryRetention time.Duration
	// ProgTimeout bounds node program execution. Default 30s.
	ProgTimeout time.Duration
	// WALPath, when set, makes the backing store durable: committed
	// transactions are logged (group-committed: concurrent commits share
	// fsyncs) and the store recovers on reopen from the newest checkpoint
	// snapshot plus the WAL tail — see Cluster.Checkpoint. Snapshot and
	// WAL-era files are created next to this path.
	WALPath string
	// SnapshotSegmentEntries caps entries per on-disk snapshot segment
	// (checkpoints and bulk-load segment builders). 0 = 4096.
	SnapshotSegmentEntries int
	// BulkLoadWorkers sizes Cluster.BulkLoad's segment-builder pool.
	// 0 = GOMAXPROCS.
	BulkLoadWorkers int
	// Directory overrides vertex placement (default: hash partitioning;
	// see internal/partition for the LDG streaming partitioner, §4.6).
	Directory partition.Directory
	// NetDelayMin/NetDelayMax inject uniform random latency into every
	// message, simulating a network (tests and experiments).
	NetDelayMin, NetDelayMax time.Duration
	// WireFrames round-trips every fabric message through the binary
	// wire frame codec (internal/transport frame layer): each send pays
	// exactly the encode/decode a TCP deployment would, and receivers
	// get deep copies rather than shared references — full wire
	// fidelity in-process. Tests and benchmarks use it to exercise and
	// measure the serialization hot path.
	WireFrames bool
	// HeartbeatTimeout, when positive, runs the cluster manager (§4.3):
	// servers send heartbeats and are automatically recovered after this
	// much silence. Zero disables fault tolerance machinery.
	HeartbeatTimeout time.Duration
	// OracleReplicas chain-replicates the timeline oracle across this
	// many replicas (§3.4); 0 or 1 runs it unreplicated.
	OracleReplicas int
	// MaxShardVertices enables demand paging (§6.1): each shard keeps at
	// most this many resident vertex histories, paging cold vertices out
	// once the GC watermark passes them and faulting them back in from
	// the backing store on access. Requires GCPeriod. 0 = unlimited.
	MaxShardVertices int
	// ShardWorkers is each shard's apply worker-pool size for
	// conflict-aware parallel transaction execution: mutually
	// non-conflicting transactions (disjoint vertex footprints) apply
	// concurrently, conflicting ones keep their timestamp order. 0 or 1
	// applies serially on the shard event loop (the paper's design).
	ShardWorkers int
	// ShardMaxBatch caps one parallel apply batch (0 = 256), bounding
	// batch-barrier latency. Ignored unless ShardWorkers > 1.
	ShardMaxBatch int
	// MaxApplyLag bounds, per gatekeeper, how many committed write-sets
	// may be awaiting shard application before further commits are
	// throttled (admission control). Sustained commit bursts can outrun
	// the apply path; without a bound the backlog — shard queue memory,
	// the timeline oracle's dependency graph, and the latency of
	// anything that waits for the apply frontier (node programs,
	// Quiesce, migration) — grows without limit, and ordering-query cost
	// grows with the backlog, slowing the whole pipeline down. 0 = 256;
	// negative disables throttling.
	MaxApplyLag int
	// RebalanceInterval, when positive, runs the background heat-driven
	// rebalancer (§4.6): every interval the hottest vertices across all
	// shards are re-placed with the LDG streaming partitioner against
	// their live adjacency and migrated in one batched pause
	// (Cluster.MigrateBatch). Requires Config.Directory to be assignable
	// (see NewMappedDirectory); Open fails otherwise. Zero disables the
	// loop — Cluster.RebalanceOnce still runs a cycle on demand.
	RebalanceInterval time.Duration
	// RebalanceSlack is the LDG capacity slack factor for rebalancing
	// (e.g. 0.1 lets each shard hold 10% above the balanced share).
	// 0 = 0.1.
	RebalanceSlack float64
	// DisableMetrics turns the observability surface off entirely: no
	// registry, no histograms, no tracing — every instrumentation site
	// degrades to nil-handle no-ops. The default (metrics on) is cheap
	// enough to leave on permanently; this knob exists to measure that
	// claim (the metrics-overhead benchmark gate) and for callers who
	// want the last percent.
	DisableMetrics bool
	// TraceSample samples one in N committed transactions for
	// end-to-end span tracing (gatekeeper queue → timestamp mint →
	// oracle refinement → wire transfer → shard apply). 0 = 64;
	// 1 traces every transaction (tests). Finished traces land in the
	// slow-op ring (Cluster.SlowOps) and the weaverd metrics endpoint.
	TraceSample int
	// Indexes declares secondary property indexes: for each listed
	// vertex-property key, every shard maintains a multiversion inverted
	// index over its partition, kept exactly in step with the graph by
	// the transaction apply path. Client.Lookup/LookupRange answer
	// equality and ordered range queries over these keys at a fresh
	// snapshot (strictly serializable — never a phantom from a
	// concurrent writer) or, via Client.At, at any retained past
	// timestamp; RunProgramWhere starts node programs from an index
	// selector. Index postings are garbage-collected, migrated, paged,
	// bulk-loaded and recovered alongside the graph versions they mirror.
	Indexes []IndexSpec
	// DisableQueryPlanning routes every index lookup through the legacy
	// broadcast path: all shards are contacted for every query, and the
	// presence-marker catalog (internal/plan) is maintained but unused for
	// pruning. Client.Explain reports the fallback. The default (planning
	// on) prunes equality-lookup scatter to the shards that can hold
	// matches.
	DisableQueryPlanning bool
	// PlanStatsPeriod bounds how often each shard publishes per-key index
	// cardinality statistics to the gatekeepers for query-plan row
	// estimates (EXPLAIN's "estimated rows" and the estimate-error
	// metric). 0 = 250ms; negative disables publication — estimates
	// degrade to "unknown", shard pruning is unaffected (soundness rests
	// on the marker catalog, never on statistics).
	PlanStatsPeriod time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Gatekeepers <= 0 {
		c.Gatekeepers = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Retain {
		c.GCPeriod = 0
	}
	seen := make(map[string]bool, len(c.Indexes))
	for _, sp := range c.Indexes {
		if sp.Key == "" {
			return c, errors.New("weaver: Config.Indexes: empty property key")
		}
		if seen[sp.Key] {
			return c, fmt.Errorf("weaver: Config.Indexes: duplicate key %q", sp.Key)
		}
		seen[sp.Key] = true
	}
	return c, nil
}

// Cluster is a fully assembled in-process Weaver deployment.
type Cluster struct {
	cfg       Config
	fabric    *transport.Fabric
	kv        kvstore.Backing
	orc       oracle.Client
	reg       *nodeprog.Registry
	dir       partition.Directory
	mgr       *cluster.Manager
	obs       *obs.Registry
	baseEpoch uint64

	// Client-side metric handles, resolved once (nil-safe when metrics
	// are disabled).
	clientTxDur     *obs.Histogram
	clientTxRetries *obs.Counter

	serversMu sync.RWMutex
	gks       []*gatekeeper.Gatekeeper
	shards    []*shard.Shard

	nextClient atomic.Uint64
	closeOnce  sync.Once
	closeErr   error
	closed     atomic.Bool

	// reconfigMu serializes epoch reconfigurations (Manager.Recover)
	// against vertex-migration batches. Without it a recovery can replace
	// c.shards[i] between a batch's server snapshot and its in-memory
	// install, so the batch evicts from and installs into a dead shard
	// instance while readers route to the fresh one — an acknowledged
	// write a reader can no longer see.
	reconfigMu sync.Mutex

	// testHookMigrateSnapshotted, when non-nil, runs after MigrateBatch
	// has taken the reconfig lock and snapshotted the live servers —
	// exactly the window a concurrent recovery used to corrupt.
	testHookMigrateSnapshotted func()

	rebal rebalState
}

// Open builds and starts a cluster.
func Open(cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	if !cfg.DisableMetrics {
		c.obs = obs.New(obs.Config{TraceSample: cfg.TraceSample})
	}
	c.clientTxDur = c.obs.LatencyHistogram("weaver_client_tx_seconds")
	c.clientTxRetries = c.obs.Counter("weaver_client_tx_retries_total")
	c.fabric = transport.NewFabric()
	if cfg.NetDelayMax > 0 {
		c.fabric.WithDelay(cfg.NetDelayMin, cfg.NetDelayMax)
	}
	if cfg.WireFrames {
		// Rare messages (epoch reconfiguration) cross under the gob
		// fallback frame type and need their types registered.
		wire.RegisterGob()
		c.fabric.WithWireFrames()
		c.fabric.WithWireMetrics(wireMetrics(c.obs))
	}
	if cfg.WALPath != "" {
		durable, err := kvstore.NewDurableOptions(cfg.WALPath, kvstore.DurableOptions{
			SegmentEntries: cfg.SnapshotSegmentEntries,
		})
		if err != nil {
			return nil, fmt.Errorf("weaver: open backing store: %w", err)
		}
		durable.InstrumentWAL(
			c.obs.LatencyHistogram("weaver_wal_fsync_seconds"),
			c.obs.SizeHistogram("weaver_wal_group_commit_txns"),
		)
		c.kv = kvstore.AsBacking(durable)
	} else {
		c.kv = kvstore.AsBacking(kvstore.New())
	}
	if cfg.OracleReplicas > 1 {
		c.orc = oracle.NewReplicated(cfg.OracleReplicas)
	} else {
		c.orc = oracle.NewService()
	}
	c.reg = nodeprog.NewRegistry()
	c.dir = cfg.Directory
	if c.dir == nil {
		c.dir = partition.NewHash(cfg.Shards)
	}
	if cfg.RebalanceInterval > 0 {
		if _, ok := c.dir.(*partition.Mapped); !ok {
			c.kv.Close()
			return nil, errors.New("weaver: Config.RebalanceInterval requires an assignable directory (see NewMappedDirectory)")
		}
	}

	heartbeat := time.Duration(0)
	if cfg.HeartbeatTimeout > 0 {
		heartbeat = cfg.HeartbeatTimeout / 4
	}
	if cfg.WALPath != "" {
		// Epoch continuity across restarts (§4.3): every timestamp of
		// the reopened cluster must order after every pre-restart one,
		// so resume one epoch above the last persisted.
		if raw, _, ok := c.kv.GetVersioned(epochKey); ok && len(raw) == 8 {
			for i := 0; i < 8; i++ {
				c.baseEpoch = c.baseEpoch<<8 | uint64(raw[i])
			}
		}
		c.baseEpoch++
		buf := make([]byte, 8)
		for i := 0; i < 8; i++ {
			buf[i] = byte(c.baseEpoch >> (56 - 8*i))
		}
		tx := c.kv.Begin()
		tx.Put(epochKey, buf)
		if err := tx.Commit(); err != nil {
			return nil, fmt.Errorf("weaver: persist epoch: %w", err)
		}
	}
	// Durable reopen: one scan over the vertex keyspace decodes every
	// record once, rebuilds locality-aware placements (BulkLoad's LDG
	// assignments, RebalanceLDG moves — the backing store doubles as the
	// authoritative vertex→shard directory, §3.2, and hop routing must
	// agree with where each vertex recovers), and buckets records per
	// shard for batched install — instead of every shard re-scanning and
	// re-decoding the full keyspace for its own partition.
	var perShard [][]*graph.VertexRecord
	if cfg.WALPath != "" {
		perShard = make([][]*graph.VertexRecord, cfg.Shards)
		md, _ := c.dir.(*partition.Mapped)
		c.kv.ScanPrefix(vertexKeyPrefix, func(_ string, data []byte) {
			rec, err := graph.DecodeRecord(data)
			if err != nil || rec.Deleted {
				return
			}
			if md != nil {
				md.Assign(rec.ID, rec.Shard)
			}
			if rec.Shard >= 0 && rec.Shard < cfg.Shards {
				perShard[rec.Shard] = append(perShard[rec.Shard], rec)
			}
		})
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := c.newShard(i, c.baseEpoch)
		if perShard != nil {
			sh.Install(perShard[i])
		}
		c.shards = append(c.shards, sh)
	}
	for i := 0; i < cfg.Gatekeepers; i++ {
		c.gks = append(c.gks, c.newGatekeeper(i, c.baseEpoch))
	}
	for _, sh := range c.shards {
		sh.Start()
	}
	for _, gk := range c.gks {
		gk.Start()
	}
	// Commit→apply lag, summed across gatekeepers, read at scrape time.
	c.obs.GaugeFunc("weaver_gk_apply_lag", func() int64 {
		c.serversMu.RLock()
		defer c.serversMu.RUnlock()
		var lag int64
		for _, gk := range c.gks {
			lag += gk.ApplyLag()
		}
		return lag
	})
	if heartbeat > 0 {
		c.mgr = cluster.New(cluster.Config{
			HeartbeatTimeout: cfg.HeartbeatTimeout,
			StartEpoch:       c.baseEpoch,
			ReconfigLock:     &c.reconfigMu,
		}, c.fabric.Endpoint(cluster.Addr))
		for i := range c.shards {
			i := i
			c.mgr.Register(transport.ShardAddr(i), false, c.shards[i], func(epoch uint64) cluster.Server {
				return c.restartShard(i, epoch)
			})
		}
		for i := range c.gks {
			i := i
			c.mgr.Register(transport.GatekeeperAddr(i), true, c.gks[i], func(epoch uint64) cluster.Server {
				return c.restartGatekeeper(i, epoch)
			})
		}
		c.mgr.Start()
	}
	if cfg.RebalanceInterval > 0 {
		c.startRebalancer()
	}
	return c, nil
}

// newShard constructs (without starting) the shard server at index i.
func (c *Cluster) newShard(i int, epoch uint64) *shard.Shard {
	heartbeat := time.Duration(0)
	if c.cfg.HeartbeatTimeout > 0 {
		heartbeat = c.cfg.HeartbeatTimeout / 4
	}
	ep := c.fabric.Endpoint(transport.ShardAddr(i))
	sh := shard.New(shard.Config{
		ID:              i,
		NumGatekeepers:  c.cfg.Gatekeepers,
		Epoch:           epoch,
		Retain:          c.cfg.Retain,
		HeartbeatPeriod: heartbeat,
		MaxVertices:     c.cfg.MaxShardVertices,
		Workers:         c.cfg.ShardWorkers,
		MaxBatch:        c.cfg.ShardMaxBatch,
		Indexes:         c.cfg.Indexes,
		StatsPeriod:     c.cfg.PlanStatsPeriod,
		Obs:             c.obs,
	}, ep, c.orc, c.reg, c.dir)
	if c.cfg.MaxShardVertices > 0 {
		sh.SetPager(c.kv)
	}
	return sh
}

// newGatekeeper constructs (without starting) the gatekeeper at index i.
func (c *Cluster) newGatekeeper(i int, epoch uint64) *gatekeeper.Gatekeeper {
	heartbeat := time.Duration(0)
	if c.cfg.HeartbeatTimeout > 0 {
		heartbeat = c.cfg.HeartbeatTimeout / 4
	}
	ep := c.fabric.Endpoint(transport.GatekeeperAddr(i))
	indexed := make([]string, 0, len(c.cfg.Indexes))
	for _, sp := range c.cfg.Indexes {
		indexed = append(indexed, sp.Key)
	}
	return gatekeeper.New(gatekeeper.Config{
		ID:               i,
		NumGatekeepers:   c.cfg.Gatekeepers,
		NumShards:        c.cfg.Shards,
		Epoch:            epoch,
		AnnouncePeriod:   c.cfg.AnnouncePeriod,
		NopPeriod:        c.cfg.NopPeriod,
		GCPeriod:         c.cfg.GCPeriod,
		HistoryRetention: c.cfg.HistoryRetention,
		ProgTimeout:      c.cfg.ProgTimeout,
		MaxApplyLag:      c.cfg.MaxApplyLag,
		HeartbeatPeriod:  heartbeat,
		IndexedKeys:      indexed,
		DisablePlanning:  c.cfg.DisableQueryPlanning,
		Obs:              c.obs,
	}, ep, c.kv, c.orc, c.dir)
}

// restartShard replaces a dead shard: a fresh instance recovers its
// partition from the backing store (§4.3) and rejoins on the same address.
func (c *Cluster) restartShard(i int, epoch uint64) *shard.Shard {
	sh := c.newShard(i, epoch)
	sh.Recover(c.kv)
	sh.Start()
	c.serversMu.Lock()
	c.shards[i] = sh
	c.serversMu.Unlock()
	return sh
}

// restartGatekeeper replaces a dead gatekeeper: its clock restarts at zero
// in the new epoch, keeping all new timestamps after all old ones (§4.3).
func (c *Cluster) restartGatekeeper(i int, epoch uint64) *gatekeeper.Gatekeeper {
	gk := c.newGatekeeper(i, epoch)
	gk.Start()
	c.serversMu.Lock()
	c.gks[i] = gk
	c.serversMu.Unlock()
	return gk
}

// CrashShard stops shard i ungracefully (failure injection). With the
// cluster manager enabled, it is detected and recovered automatically; or
// call RecoverNow for deterministic tests.
func (c *Cluster) CrashShard(i int) {
	c.shardAt(i).Stop()
}

// CrashGatekeeper stops gatekeeper i ungracefully (failure injection).
func (c *Cluster) CrashGatekeeper(i int) {
	c.gkAt(i).Stop()
}

// RecoverNow runs the §4.3 reconfiguration for the named server
// immediately, without waiting for heartbeat timeouts. Requires the
// cluster manager (Config.HeartbeatTimeout > 0).
func (c *Cluster) RecoverNow(addr transport.Addr) error {
	if c.mgr == nil {
		return errors.New("weaver: cluster manager disabled (set HeartbeatTimeout)")
	}
	return c.mgr.Recover(addr)
}

// ShardAddr and GatekeeperAddr name servers for RecoverNow.
var (
	ShardAddr      = transport.ShardAddr
	GatekeeperAddr = transport.GatekeeperAddr
)

// errOracleNotReplicated gates the oracle fault-injection surface.
var errOracleNotReplicated = errors.New("weaver: timeline oracle is not replicated (set Config.OracleReplicas > 1)")

// FailOracleReplica kills one replica of the chain-replicated timeline
// oracle (failure injection). The chain relinks around it: ordering
// queries and assignments keep working as long as one replica is live.
func (c *Cluster) FailOracleReplica(i int) error {
	rep, ok := c.orc.(*oracle.Replicated)
	if !ok {
		return errOracleNotReplicated
	}
	rep.FailReplica(i)
	return nil
}

// HealOracleReplica rejoins a previously failed oracle replica at the
// tail of the chain, transferring the live tail's full DAG state to it
// (§4.3) — decisions made while it was down are preserved byte-for-byte.
func (c *Cluster) HealOracleReplica(i int) error {
	rep, ok := c.orc.(*oracle.Replicated)
	if !ok {
		return errOracleNotReplicated
	}
	return rep.HealReplica(i)
}

// OracleReplicasLive reports how many oracle chain replicas are serving.
// Returns 1 for an unreplicated oracle.
func (c *Cluster) OracleReplicasLive() int {
	if rep, ok := c.orc.(*oracle.Replicated); ok {
		return rep.LiveReplicas()
	}
	return 1
}

// Quiesce blocks until every transaction committed so far has been applied
// by every involved shard's in-memory graph, or the timeout expires. Commit
// alone already guarantees durability and strict serializability; Quiesce
// is the apply fence for code that inspects shard state directly (tests,
// benchmarks, Graph()-level checks) or wants to measure apply throughput.
func (c *Cluster) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	c.serversMu.RLock()
	gks := append([]*gatekeeper.Gatekeeper(nil), c.gks...)
	c.serversMu.RUnlock()
	for _, gk := range gks {
		remain := time.Until(deadline)
		if remain <= 0 {
			remain = time.Nanosecond
		}
		if err := gk.Quiesce(remain); err != nil {
			return err
		}
	}
	return nil
}

// Epoch returns the cluster's current epoch.
func (c *Cluster) Epoch() uint64 {
	if c.mgr == nil {
		return c.baseEpoch
	}
	return c.mgr.Epoch()
}

// epochKey persists the cluster epoch in the backing store.
const epochKey = "meta/epoch"

// Close stops every server and releases the backing store. It is
// idempotent and safe for concurrent use: the shutdown runs exactly once
// and every caller observes its result.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		// The rebalancer stops first, and stopRebalancer waits out any
		// in-flight migration batch, so a batch never runs against
		// half-stopped gatekeepers.
		c.stopRebalancer()
		if c.mgr != nil {
			c.mgr.Stop()
		}
		c.serversMu.RLock()
		gks := append([]*gatekeeper.Gatekeeper(nil), c.gks...)
		shards := append([]*shard.Shard(nil), c.shards...)
		c.serversMu.RUnlock()
		for _, gk := range gks {
			gk.Stop()
		}
		for _, sh := range shards {
			sh.Stop()
		}
		c.closeErr = c.kv.Close()
	})
	return c.closeErr
}

// Registry exposes the node-program registry so applications can register
// custom programs (do this before running them).
func (c *Cluster) Registry() *nodeprog.Registry { return c.reg }

// Directory exposes the vertex placement directory.
func (c *Cluster) Directory() partition.Directory { return c.dir }

// Client returns a client bound to one gatekeeper, chosen round-robin.
// Clients are not safe for concurrent use, but Client itself is; create one
// client per goroutine (they are cheap).
func (c *Cluster) Client() *Client {
	n := c.nextClient.Add(1) - 1
	return &Client{c: c, idx: int(n % uint64(c.cfg.Gatekeepers))}
}

// ClientAt returns a client bound to a specific gatekeeper.
func (c *Cluster) ClientAt(gk int) (*Client, error) {
	if gk < 0 || gk >= c.cfg.Gatekeepers {
		return nil, errors.New("weaver: no such gatekeeper")
	}
	return &Client{c: c, idx: gk}, nil
}

// gkAt returns the current gatekeeper instance at index i (instances are
// replaced across failover).
func (c *Cluster) gkAt(i int) *gatekeeper.Gatekeeper {
	c.serversMu.RLock()
	defer c.serversMu.RUnlock()
	return c.gks[i]
}

// shardAt returns the current shard instance at index i.
func (c *Cluster) shardAt(i int) *shard.Shard {
	c.serversMu.RLock()
	defer c.serversMu.RUnlock()
	return c.shards[i]
}

// Stats aggregates activity counters across the cluster.
type Stats struct {
	Gatekeepers []gatekeeper.Stats
	Shards      []shard.Stats
	Oracle      oracle.Stats
	Store       kvstore.Stats
	Rebalance   RebalanceStats
}

// Stats returns a snapshot of all counters.
func (c *Cluster) Stats() Stats {
	st := Stats{Oracle: c.orc.Stats(), Store: c.kv.Stats(), Rebalance: c.rebalanceStats()}
	c.serversMu.RLock()
	defer c.serversMu.RUnlock()
	for _, gk := range c.gks {
		st.Gatekeepers = append(st.Gatekeepers, gk.Stats())
	}
	for _, sh := range c.shards {
		st.Shards = append(st.Shards, sh.Stats())
	}
	return st
}

// TotalAnnounces sums gatekeeper announce messages (Fig 14's proactive
// coordination metric).
func (s Stats) TotalAnnounces() uint64 {
	var n uint64
	for _, g := range s.Gatekeepers {
		n += g.Announces
	}
	return n
}

// TotalOracleMessages sums timeline-oracle requests (Fig 14's reactive
// coordination metric).
func (s Stats) TotalOracleMessages() uint64 {
	return s.Oracle.Queries + s.Oracle.Assigns
}
