package weaver

import (
	"fmt"
	"sync"
	"testing"
)

// TestWireFramesEndToEnd runs a full mixed workload with Config.WireFrames
// on: every gatekeeper↔shard message round-trips through the binary frame
// codec (encode, CRC, decode) exactly as it would over TCP. Commits, node
// programs, multi-hop traversals, and index lookups must all behave
// identically to the in-process fast path.
func TestWireFramesEndToEnd(t *testing.T) {
	cfg := testConfig(2, 3)
	cfg.WireFrames = true
	cfg.Indexes = []IndexSpec{{Key: "city"}}
	c := openTest(t, cfg)
	cl := c.Client()

	// Commit a chain graph plus indexed properties.
	const n = 24
	if _, err := cl.RunTx(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			v := VertexID(fmt.Sprintf("v%d", i))
			tx.CreateVertex(v)
			if i%3 == 0 {
				tx.SetProperty(v, "city", "ithaca")
			}
		}
		for i := 0; i < n-1; i++ {
			tx.CreateEdge(VertexID(fmt.Sprintf("v%d", i)), VertexID(fmt.Sprintf("v%d", i+1)))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Multi-hop traversal crosses shard boundaries — every hop batch is a
	// framed ProgHops/ProgDelta exchange.
	ids, _, err := cl.Traverse("v0", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n {
		t.Fatalf("BFS visited %d vertices, want %d", len(ids), n)
	}
	dist, found, err := cl.ShortestPath("v0", "v10")
	if err != nil || !found || dist != 10 {
		t.Fatalf("shortest path = %d,%v,%v want 10", dist, found, err)
	}

	// Index lookup rides framed IndexLookup/IndexResult messages.
	got, _, err := cl.Lookup("city", "ithaca")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != (n+2)/3 {
		t.Fatalf("lookup returned %d vertices, want %d: %v", len(got), (n+2)/3, got)
	}

	// Cross-gatekeeper read: commit through gk 0, read through gk 1.
	cl0, _ := c.ClientAt(0)
	cl1, _ := c.ClientAt(1)
	if _, err := cl0.RunTx(func(tx *Tx) error {
		tx.CreateVertex("fresh")
		tx.SetProperty("fresh", "v", "1")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	d, ok, err := cl1.GetNode("fresh")
	if err != nil || !ok || d.Props["v"] != "1" {
		t.Fatalf("cross-gatekeeper read over frames: %+v ok=%v err=%v", d, ok, err)
	}

	// Concurrent writers: framed TxForward/TxApplied under contention.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcl := c.Client()
			for i := 0; i < 5; i++ {
				if _, err := wcl.RunTx(func(tx *Tx) error {
					v := VertexID(fmt.Sprintf("w%d-%d", w, i))
					tx.CreateVertex(v)
					tx.SetProperty(v, "n", fmt.Sprint(i))
					return nil
				}); err != nil {
					errs <- fmt.Errorf("writer %d tx %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		v, ok, err := cl.GetVertex(VertexID(fmt.Sprintf("w%d-4", w)))
		if err != nil || !ok {
			t.Fatalf("writer %d vertex missing: ok=%v err=%v", w, ok, err)
		}
		if v.Props["n"] != "4" {
			t.Fatalf("writer %d props lost over frames: %+v", w, v)
		}
	}
}

// TestWireFramesMatchesPlainFabric runs the same deterministic workload
// with and without WireFrames and requires identical query results — the
// frame codec must be semantically invisible.
func TestWireFramesMatchesPlainFabric(t *testing.T) {
	run := func(frames bool) ([]VertexID, int) {
		cfg := testConfig(2, 2)
		cfg.WireFrames = frames
		c := openTest(t, cfg)
		cl := c.Client()
		if _, err := cl.RunTx(func(tx *Tx) error {
			for _, v := range []VertexID{"a", "b", "c", "d"} {
				tx.CreateVertex(v)
			}
			tx.CreateEdge("a", "b")
			tx.CreateEdge("b", "c")
			tx.CreateEdge("a", "d")
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		ids, _, err := cl.Traverse("a", "", "", 0)
		if err != nil {
			t.Fatal(err)
		}
		deg, err := cl.CountEdges("a")
		if err != nil {
			t.Fatal(err)
		}
		return sortedVertexIDs(ids), deg
	}
	plainIDs, plainDeg := run(false)
	frameIDs, frameDeg := run(true)
	if fmt.Sprint(plainIDs) != fmt.Sprint(frameIDs) || plainDeg != frameDeg {
		t.Fatalf("framed fabric diverged: %v/%d vs %v/%d", frameIDs, frameDeg, plainIDs, plainDeg)
	}
}

func sortedVertexIDs(ids []VertexID) []VertexID {
	out := append([]VertexID{}, ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
