package weaver

import (
	"weaver/internal/obs"
	"weaver/internal/transport"
)

// Observability: the cluster-level metrics surface. Every stage of the
// refinable-timestamp pipeline is instrumented (internal/obs) — commit
// admission, timestamp mint, OCC execute, oracle refinement wait, shard
// forward, wire transfer, shard queue and apply, WAL group commit — and
// surfaces three ways: the typed Metrics snapshot here, the weaverd
// -metrics-addr HTTP endpoint (Prometheus text + slow-op JSON + pprof),
// and weaver-bench's per-stage histograms in its results JSON.
//
// Instrumentation is on by default and designed to stay on: counters and
// histogram buckets are single atomic adds, trace spans are sampled
// (Config.TraceSample), and Config.DisableMetrics collapses every site
// to a nil-handle no-op for measuring the overhead itself.

// Metrics returns a point-in-time snapshot of every registered counter,
// gauge, and histogram. Returns the zero Snapshot when metrics are
// disabled (Config.DisableMetrics).
func (c *Cluster) Metrics() obs.Snapshot {
	return c.obs.Snapshot()
}

// SlowOps returns up to n recently traced transactions, slowest first,
// each with its per-stage spans (gk_queue, gk_mint, gk_execute,
// oracle_refine, gk_store_commit, gk_forward, wire_transfer,
// shard_queue, shard_apply). Only sampled transactions appear
// (Config.TraceSample). Nil when metrics are disabled.
func (c *Cluster) SlowOps(n int) []obs.TraceSnapshot {
	return c.obs.Tracer().SlowOps(n)
}

// Observability exposes the cluster's metrics registry — the handle the
// weaverd HTTP endpoint serves, also useful for registering
// application-level gauges. Nil when metrics are disabled; a nil
// registry is safe to use (every method no-ops).
func (c *Cluster) Observability() *obs.Registry { return c.obs }

// wireMetrics builds the frame-traffic counters the transport layer
// increments on the wire-frame hot path. Nil registry yields nil
// handles, which the transport treats as disabled.
func wireMetrics(r *obs.Registry) transport.WireMetrics {
	return transport.WireMetrics{
		EncodedBytes: r.Counter("weaver_wire_encoded_bytes_total"),
		DecodedBytes: r.Counter("weaver_wire_decoded_bytes_total"),
		Frames:       r.Counter("weaver_wire_frames_total"),
	}
}
