// Time-travel read suite (§4.5): node programs pinned at past timestamps
// must see exactly the state as of that timestamp — across concurrent
// writes, batched vertex migration of the very vertices being queried, and
// version garbage collection — and reads behind the GC watermark must fail
// with a typed error rather than return wrong data.
package weaver_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"weaver"
	"weaver/internal/workload"
)

// timetravelConfig is a small cluster with aggressive GC so watermarks
// actually move during the test.
func timetravelConfig() weaver.Config {
	return weaver.Config{
		Gatekeepers:    1,
		Shards:         3,
		AnnouncePeriod: 200 * time.Microsecond,
		NopPeriod:      100 * time.Microsecond,
		GCPeriod:       2 * time.Millisecond,
		ProgTimeout:    10 * time.Second,
		Directory:      weaver.NewMappedDirectory(3),
	}
}

// TestTimeTravelExactAcrossMigrationAndGC pins a snapshot after a known
// write, keeps writing, batch-migrates the queried vertex, lets GC run,
// and asserts the pinned read returns exactly the as-of value throughout —
// then releases the pin and asserts reads eventually degrade to
// ErrStaleSnapshot, never to wrong data.
func TestTimeTravelExactAcrossMigrationAndGC(t *testing.T) {
	c, err := weaver.Open(timetravelConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	const acct = weaver.VertexID("acct")
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.CreateVertex(acct)
		tx.SetProperty(acct, "n", "0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	inc := func() {
		t.Helper()
		if _, err := cl.RunTx(func(tx *weaver.Tx) error {
			d, ok, err := tx.GetVertex(acct)
			if err != nil || !ok {
				return fmt.Errorf("read acct: ok=%v err=%v", ok, err)
			}
			n, _ := strconv.Atoi(d.Props["n"])
			tx.SetProperty(acct, "n", strconv.Itoa(n+1))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		inc()
	}

	snap, err := c.SnapshotTS()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	for i := 0; i < 7; i++ {
		inc()
	}

	readAtSnap := func() (string, error) {
		d, ok, err := cl.At(snap.TS()).GetNode(acct)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("acct invisible at snapshot")
		}
		return d.Props["n"], nil
	}

	if got, err := readAtSnap(); err != nil || got != "5" {
		t.Fatalf("pinned read before migration: n=%q err=%v, want 5", got, err)
	}
	if d, ok, err := cl.GetNode(acct); err != nil || !ok || d.Props["n"] != "12" {
		t.Fatalf("current read: %+v ok=%v err=%v, want n=12", d, ok, err)
	}

	// Migrate the queried vertex; the full version history must move with
	// it (pre-PR, migration truncated history to the last record and this
	// read returned 12).
	home := c.Directory().Lookup(acct)
	if _, err := c.MigrateBatch([]weaver.Move{{Vertex: acct, Target: (home + 1) % 3}}); err != nil {
		t.Fatal(err)
	}
	if got, err := readAtSnap(); err != nil || got != "5" {
		t.Fatalf("pinned read after migration: n=%q err=%v, want 5", got, err)
	}

	// Let GC churn with the pin held: more writes, several GC periods.
	for i := 0; i < 5; i++ {
		inc()
		time.Sleep(3 * time.Millisecond)
	}
	if got, err := readAtSnap(); err != nil || got != "5" {
		t.Fatalf("pinned read after GC churn: n=%q err=%v, want 5", got, err)
	}

	// Release the pin: the watermark advances past the snapshot and reads
	// must degrade to the typed error — any read that still succeeds on
	// the way there must still be exact.
	snap.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		got, err := readAtSnap()
		if err != nil {
			if !errors.Is(err, weaver.ErrStaleSnapshot) {
				t.Fatalf("released snapshot failed with untyped error: %v", err)
			}
			break
		}
		if got != "5" {
			t.Fatalf("released snapshot returned wrong data: n=%q, want 5 (or ErrStaleSnapshot)", got)
		}
		if time.Now().After(deadline) {
			t.Fatal("GC watermark never passed the released snapshot")
		}
		inc() // keep clocks and watermarks moving
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHistoryRetentionWindow checks Config.HistoryRetention without pins:
// an unpinned snapshot stays readable for the window, then fails typed.
func TestHistoryRetentionWindow(t *testing.T) {
	cfg := weaver.Config{
		Gatekeepers:      2,
		Shards:           2,
		AnnouncePeriod:   200 * time.Microsecond,
		NopPeriod:        100 * time.Microsecond,
		GCPeriod:         time.Millisecond,
		HistoryRetention: 1500 * time.Millisecond,
		ProgTimeout:      10 * time.Second,
	}
	c, err := weaver.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.CreateVertex("doc")
		tx.SetProperty("doc", "rev", "1")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	snap := cl.Snapshot() // unpinned: protected only by the retention window
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.SetProperty("doc", "rev", "2")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Inside the window the historical read must succeed and be exact.
	d, ok, err := cl.At(snap).GetNode("doc")
	if err != nil || !ok || d.Props["rev"] != "1" {
		t.Fatalf("read inside retention window: %+v ok=%v err=%v, want rev=1", d, ok, err)
	}

	// Once the window ages out, the read must degrade to the typed error;
	// successful reads on the way must remain exact.
	deadline := time.Now().Add(30 * time.Second)
	for {
		d, ok, err := cl.At(snap).GetNode("doc")
		if err != nil {
			if !errors.Is(err, weaver.ErrStaleSnapshot) {
				t.Fatalf("expired snapshot failed with untyped error: %v", err)
			}
			return
		}
		if !ok || d.Props["rev"] != "1" {
			t.Fatalf("expired snapshot returned wrong data: %+v ok=%v", d, ok)
		}
		if time.Now().After(deadline) {
			t.Fatal("retention window never expired")
		}
		// Keep commits flowing so clocks, watermark samples, and GC all
		// advance.
		if _, err := cl.RunTx(func(tx *weaver.Tx) error {
			tx.SetProperty("doc", "rev", "2")
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTimeTravelUnderConcurrentWritesMigrationAndGC is the randomized
// acceptance test: concurrent writers increment registers, a migrator
// batch-moves the very registers being queried, GC runs throughout, and a
// snapshotter pins snapshots and records what it read at each. Every
// pinned read must be STABLE — re-reading any (snapshot, vertex) later,
// after more writes, migrations, and GC, must return the recorded value —
// and no read may ever fail untyped. Run with -race.
func TestTimeTravelUnderConcurrentWritesMigrationAndGC(t *testing.T) {
	seed := workload.TestSeed(t)
	cfg := weaver.Config{
		Gatekeepers:    2,
		Shards:         3,
		AnnouncePeriod: 200 * time.Microsecond,
		NopPeriod:      100 * time.Microsecond,
		GCPeriod:       2 * time.Millisecond,
		ShardWorkers:   4,
		ProgTimeout:    10 * time.Second,
		Directory:      weaver.NewMappedDirectory(3),
	}
	c, err := weaver.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		registers = 12
		writers   = 4
	)
	reg := func(i int) weaver.VertexID { return weaver.VertexID(fmt.Sprintf("tr%d", i)) }
	setup := c.Client()
	if _, err := setup.RunTx(func(tx *weaver.Tx) error {
		for i := 0; i < registers; i++ {
			tx.CreateVertex(reg(i))
			tx.SetProperty(reg(i), "n", "0")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errCh := make(chan error, writers+2)
	var wg sync.WaitGroup

	// Writers: randomized register increments.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.Client()
			r := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := reg(r.Intn(registers))
				if _, err := cl.RunTx(func(tx *weaver.Tx) error {
					d, ok, err := tx.GetVertex(v)
					if err != nil || !ok {
						return fmt.Errorf("writer read %q: ok=%v err=%v", v, ok, err)
					}
					n, _ := strconv.Atoi(d.Props["n"])
					tx.SetProperty(v, "n", strconv.Itoa(n+1))
					return nil
				}); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	// Migrator: batch-rotate sliding windows of the queried registers
	// between shards, one pause per batch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(seed ^ 0x6d69677261746f72)) // "migrator"
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			moves := make([]weaver.Move, 0, 4)
			perm := r.Perm(registers)[:4]
			for _, j := range perm {
				v := reg(j)
				moves = append(moves, weaver.Move{Vertex: v, Target: (c.Directory().Lookup(v) + 1 + r.Intn(2)) % 3})
			}
			if _, err := c.MigrateBatch(moves); err != nil {
				errCh <- fmt.Errorf("migrate batch %d: %w", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Snapshotter: pin snapshots, record first-read values, verify
	// stability of every earlier snapshot on each round.
	type obs struct {
		snap *weaver.Snapshot
		vals map[weaver.VertexID]string
	}
	var observations []obs
	defer func() {
		for _, o := range observations {
			o.snap.Close()
		}
	}()
	snapErr := func(err error) bool {
		if err == nil {
			return false
		}
		errCh <- err
		return true
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := c.Client()
		r := rand.New(rand.NewSource(seed ^ 0x736e617073686f74)) // "snapshot"
		for round := 0; round < 8; round++ {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := c.SnapshotTS()
			if snapErr(err) {
				return
			}
			o := obs{snap: snap, vals: make(map[weaver.VertexID]string)}
			rc := cl.At(snap.TS())
			for _, j := range r.Perm(registers)[:4] {
				d, ok, err := rc.GetNode(reg(j))
				if snapErr(err) {
					return
				}
				if !ok {
					snapErr(fmt.Errorf("round %d: %q invisible at fresh pinned snapshot", round, reg(j)))
					return
				}
				o.vals[reg(j)] = d.Props["n"]
			}
			observations = append(observations, o)
			// Stability: every earlier snapshot must still read exactly
			// what it read the first time, despite the writes, migrations
			// and GC since.
			for si, prev := range observations {
				prc := cl.At(prev.snap.TS())
				for v, want := range prev.vals {
					d, ok, err := prc.GetNode(v)
					if snapErr(err) {
						return
					}
					if !ok {
						snapErr(fmt.Errorf("snapshot %d drifted: %q vanished, first read %q", si, v, want))
						return
					}
					if d.Props["n"] != want {
						snapErr(fmt.Errorf("snapshot %d drifted: %q now %q, first read %q",
							si, v, d.Props["n"], want))
						return
					}
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Run the chaos for a bounded wall-clock window, then stop writers.
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final pass: after the whole workload (and an apply fence), every
	// snapshot still answers exactly as first observed.
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	reader := c.Client()
	for si, o := range observations {
		rc := reader.At(o.snap.TS())
		for v, want := range o.vals {
			d, ok, err := rc.GetNode(v)
			if err != nil || !ok {
				t.Fatalf("final check: snapshot %d register %q unreadable (ok=%v err=%v), first read %q",
					si, v, ok, err, want)
			}
			if d.Props["n"] != want {
				t.Fatalf("final check: snapshot %d register %q = %q, first read %q", si, v, d.Props["n"], want)
			}
		}
	}
}
