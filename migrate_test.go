package weaver

// Tests for online heat-driven repartitioning (§4.6): the batched
// migration protocol, its correctness fixes (source eviction, failed-commit
// atomicity, full-adjacency rebalancing with surfaced errors), heat
// tracking, and the background rebalancer.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"weaver/internal/gatekeeper"
	"weaver/internal/kvstore"
	"weaver/internal/partition"
)

// Migration must evict the source shard's in-memory copy: before this fix
// the stale chain lingered forever — unbounded memory on churn, and a
// shard-local read of the old copy was possible via direct graph access.
func TestMigrateEvictsSourceCopy(t *testing.T) {
	c := openTest(t, mappedConfig(1, 2))
	cl := c.Client()
	if _, err := cl.RunTx(func(tx *Tx) error {
		tx.CreateVertex("mover")
		tx.SetProperty("mover", "k", "v")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	src := c.Directory().Lookup("mover")
	dst := (src + 1) % 2
	if !c.shardAt(src).Graph().Has("mover") {
		t.Fatal("setup: source shard does not hold the vertex")
	}

	if err := c.Migrate("mover", dst); err != nil {
		t.Fatal(err)
	}
	if c.shardAt(src).Graph().Has("mover") {
		t.Fatal("source shard still resolves the vertex after migration")
	}
	if !c.shardAt(dst).Graph().Has("mover") {
		t.Fatal("target shard does not hold the vertex after migration")
	}
	// The vertex stays fully readable and writable at its new home.
	d, ok, err := cl.GetNode("mover")
	if err != nil || !ok || d.Props["k"] != "v" {
		t.Fatalf("post-migration read: %+v ok=%v err=%v", d, ok, err)
	}
}

// failCommitBacking injects a commit failure into the cluster-level
// backing-store handle (gatekeepers keep their own working handle, so
// regular traffic is unaffected — only migration's batch transaction
// fails).
type failCommitBacking struct {
	kvstore.Backing
}

func (f failCommitBacking) Begin() kvstore.Txn { return failCommitTxn{f.Backing.Begin()} }

type failCommitTxn struct{ kvstore.Txn }

func (failCommitTxn) Commit() error { return errors.New("injected commit failure") }

// A failed backing-store commit must leave no phantom copy on the target
// shard: before this fix the record was installed on the target BEFORE the
// commit, so a commit failure left a copy with no directory entry pointing
// at it.
func TestMigrateFailedCommitLeavesNoPhantom(t *testing.T) {
	c := openTest(t, mappedConfig(1, 2))
	cl := c.Client()
	if _, err := cl.RunTx(func(tx *Tx) error {
		tx.CreateVertex("p")
		tx.SetProperty("p", "k", "v")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	src := c.Directory().Lookup("p")
	dst := (src + 1) % 2

	realKV := c.kv
	c.kv = failCommitBacking{realKV}
	err := c.Migrate("p", dst)
	c.kv = realKV
	if err == nil {
		t.Fatal("migration with failing commit must error")
	}

	if c.shardAt(dst).Graph().Has("p") {
		t.Fatal("target shard holds a phantom copy after failed commit")
	}
	if !c.shardAt(src).Graph().Has("p") {
		t.Fatal("source copy lost after failed commit")
	}
	if got := c.Directory().Lookup("p"); got != src {
		t.Fatalf("directory repointed to %d after failed commit", got)
	}
	// The cluster keeps serving the vertex from its original home.
	d, ok, rerr := cl.GetNode("p")
	if rerr != nil || !ok || d.Props["k"] != "v" {
		t.Fatalf("read after failed migration: %+v ok=%v err=%v", d, ok, rerr)
	}
	// And a real migration still succeeds afterwards.
	if err := c.Migrate("p", dst); err != nil {
		t.Fatal(err)
	}
	if got := c.Directory().Lookup("p"); got != dst {
		t.Fatalf("follow-up migration did not move the vertex: %d", got)
	}
}

// MigrateBatch's contract: N moves, ONE gatekeeper pause/resume cycle.
func TestMigrateBatchSinglePause(t *testing.T) {
	const shards = 3
	c := openTest(t, mappedConfig(2, shards))
	cl := c.Client()
	const n = 6
	var ids []VertexID
	if _, err := cl.RunTx(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			v := VertexID(fmt.Sprintf("b%d", i))
			ids = append(ids, v)
			tx.CreateVertex(v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	before := c.Stats().Gatekeepers
	moves := make([]Move, n)
	for i, v := range ids {
		moves[i] = Move{Vertex: v, Target: (c.Directory().Lookup(v) + 1) % shards}
	}
	moved, err := c.MigrateBatch(moves)
	if err != nil {
		t.Fatal(err)
	}
	if moved != n {
		t.Fatalf("moved %d of %d", moved, n)
	}
	after := c.Stats().Gatekeepers
	for i := range after {
		if got := after[i].Pauses - before[i].Pauses; got != 1 {
			t.Fatalf("gatekeeper %d paused %d times for one batch of %d moves", i, got, n)
		}
	}
	for i, v := range ids {
		if got := c.Directory().Lookup(v); got != moves[i].Target {
			t.Fatalf("%s routes to %d, want %d", v, got, moves[i].Target)
		}
		if _, ok, err := cl.GetNode(v); err != nil || !ok {
			t.Fatalf("post-batch read of %s: ok=%v err=%v", v, ok, err)
		}
	}
	st := c.Stats().Rebalance
	if st.MovesTotal != n || st.LastBatchSize != n || st.Batches != 1 {
		t.Fatalf("rebalance stats: %+v", st)
	}
	var hist uint64
	for _, b := range st.PauseHist {
		hist += b
	}
	if hist != 1 || st.PauseTotal <= 0 {
		t.Fatalf("pause histogram not recorded: %+v", st)
	}

	// Duplicate vertices in one batch are rejected up front.
	if _, err := c.MigrateBatch([]Move{{ids[0], 0}, {ids[0], 1}}); err == nil {
		t.Fatal("duplicate vertex in batch must error")
	}
	// A batch of skippable moves (already home) moves nothing, succeeds.
	moved, err = c.MigrateBatch([]Move{{ids[0], c.Directory().Lookup(ids[0])}})
	if err != nil || moved != 0 {
		t.Fatalf("no-op batch: moved=%d err=%v", moved, err)
	}
}

// RebalanceLDG must see BOTH edge directions: a vertex whose only
// connectivity is in-edges from vertices outside the rebalanced set must
// still be pulled toward those neighbors. Before this fix adjacency was
// built from the scanned set's out-edges only, so "hub" looked isolated
// and stayed put.
func TestRebalanceLDGUsesInEdges(t *testing.T) {
	cfg := mappedConfig(1, 2)
	mapped := cfg.Directory.(*partition.Mapped)
	// Pin placement before creation: fans on shard 1, hub on shard 0.
	mapped.Assign("hub", 0)
	fans := []VertexID{"fan0", "fan1", "fan2", "fan3"}
	for _, f := range fans {
		mapped.Assign(f, 1)
	}
	c := openTest(t, cfg)
	cl := c.Client()
	if _, err := cl.RunTx(func(tx *Tx) error {
		tx.CreateVertex("hub")
		for _, f := range fans {
			tx.CreateVertex(f)
			tx.CreateEdge(f, "hub") // in-edges only; hub has no out-edges
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Duplicate input vertices must plan one move, not a rejected batch:
	// Cluster.Heat can report a vertex from two shards around a migration.
	moved, err := c.RebalanceLDG([]VertexID{"hub", "hub"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved %d, want 1 (in-edges invisible to the partitioner)", moved)
	}
	if got := c.Directory().Lookup("hub"); got != 1 {
		t.Fatalf("hub routes to %d, want 1 (with its fans)", got)
	}
}

// Record read errors during rebalancing must surface, not vanish: before
// this fix a vertex whose record failed to decode was silently skipped and
// placement ran on partial data with no signal.
func TestRebalanceLDGSurfacesReadErrors(t *testing.T) {
	c := openTest(t, mappedConfig(1, 2))
	cl := c.Client()
	if _, err := cl.RunTx(func(tx *Tx) error {
		tx.CreateVertex("good")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Plant a corrupt record in the vertex keyspace.
	tx := c.kv.Begin()
	if err := tx.Put(gatekeeper.VertexKey("corrupt"), []byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	_, err := c.RebalanceLDG([]VertexID{"good", "corrupt"}, 0.5)
	if err == nil {
		t.Fatal("rebalance over a corrupt record must return an error")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error does not name the unreadable record: %v", err)
	}
}

// Heat tracking end to end: writes and node-program traffic must rank the
// touched vertices in Shard.HeatTopK / Cluster.Heat.
func TestHeatTracking(t *testing.T) {
	c := openTest(t, mappedConfig(1, 2))
	cl := c.Client()
	if _, err := cl.RunTx(func(tx *Tx) error {
		tx.CreateVertex("hot")
		tx.CreateVertex("cold")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.RunTx(func(tx *Tx) error {
			tx.SetProperty("hot", "n", fmt.Sprintf("%d", i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Traverse("hot", "", "", 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	heat := c.Heat(0)
	score := make(map[VertexID]float64)
	for _, h := range heat {
		score[h.Vertex] += h.Heat
	}
	if score["hot"] == 0 {
		t.Fatalf("no heat recorded for the written+visited vertex: %v", heat)
	}
	if score["hot"] <= score["cold"] {
		t.Fatalf("heat ranking wrong: hot=%v cold=%v", score["hot"], score["cold"])
	}
	// Decay drains the table.
	for i := 0; i < 40; i++ {
		c.shardAt(0).DecayHeat(0.5)
		c.shardAt(1).DecayHeat(0.5)
	}
	if left := c.Heat(0); len(left) != 0 {
		t.Fatalf("heat survived full decay: %v", left)
	}
}

// The background rebalancer must converge a badly placed clustered graph:
// cross-shard edge fraction drops and every vertex keeps serving reads.
func TestBackgroundRebalancerReducesEdgeCut(t *testing.T) {
	cfg := mappedConfig(1, 2)
	cfg.RebalanceInterval = 3 * time.Millisecond
	cfg.RebalanceSlack = 1.0
	mapped := cfg.Directory.(*partition.Mapped)

	// Two 8-cliques, members deliberately alternated across the shards —
	// the worst placement a locality-aware partitioner can inherit.
	const k = 8
	var cliqueA, cliqueB []VertexID
	for i := 0; i < k; i++ {
		a := VertexID(fmt.Sprintf("a%d", i))
		b := VertexID(fmt.Sprintf("b%d", i))
		cliqueA = append(cliqueA, a)
		cliqueB = append(cliqueB, b)
		mapped.Assign(a, i%2)
		mapped.Assign(b, (i+1)%2)
	}
	var edges [][2]VertexID
	for _, clq := range [][]VertexID{cliqueA, cliqueB} {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				edges = append(edges, [2]VertexID{clq[i], clq[j]})
			}
		}
	}
	c := openTest(t, cfg)
	cl := c.Client()
	if _, err := cl.RunTx(func(tx *Tx) error {
		for _, clq := range [][]VertexID{cliqueA, cliqueB} {
			for _, v := range clq {
				tx.CreateVertex(v)
			}
		}
		for _, e := range edges {
			tx.CreateEdge(e[0], e[1])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	cutBefore := partition.EdgeCut(c.Directory(), edges)
	if cutBefore == 0 {
		t.Fatal("setup: adversarial placement produced no cross-shard edges")
	}

	// Traversal traffic is the heat signal; keep it flowing while the
	// rebalancer converges.
	deadline := time.Now().Add(15 * time.Second)
	for {
		for _, root := range []VertexID{cliqueA[0], cliqueB[0]} {
			if _, _, err := cl.Traverse(root, "", "", 1); err != nil {
				t.Fatal(err)
			}
		}
		st := c.Stats().Rebalance
		if st.LastError != "" {
			t.Fatalf("background rebalance failed: %s", st.LastError)
		}
		if st.MovesTotal > 0 && partition.EdgeCut(c.Directory(), edges) < cutBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebalancer never improved placement: cut %d -> %d, stats %+v",
				cutBefore, partition.EdgeCut(c.Directory(), edges), st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Every vertex still serves consistent reads after all the moves, and
	// each clique stays fully connected through its migrated members.
	for _, v := range append(append([]VertexID(nil), cliqueA...), cliqueB...) {
		if _, ok, err := cl.GetNode(v); err != nil || !ok {
			t.Fatalf("read of %s after rebalance: ok=%v err=%v", v, ok, err)
		}
	}
	for _, root := range []VertexID{cliqueA[0], cliqueB[0]} {
		ids, _, err := cl.Traverse(root, "", "", 0)
		if err != nil || len(ids) != k {
			t.Fatalf("clique traversal from %s after rebalance: %d vertices (%v), err=%v", root, len(ids), ids, err)
		}
	}
}

// Opening with a rebalance interval but no assignable directory must fail
// fast instead of silently never rebalancing.
func TestRebalancerRequiresMappedDirectory(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.RebalanceInterval = time.Millisecond
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open must reject RebalanceInterval without an assignable directory")
	}
}
