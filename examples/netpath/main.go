// Network-topology example (the paper's Fig 1): a network controller
// storing its topology in Weaver. A link flap — delete (n3,n5), create
// (n5,n7) — happens atomically while path-discovery queries run
// concurrently. Without transactions a traversal could report the phantom
// path n1→n3→n5→n7 that never existed; with Weaver it cannot. This example
// hammers the update and query concurrently and verifies the phantom path
// is never observed.
package main

import (
	"fmt"
	"log"
	"sync"

	"weaver"
)

func main() {
	c, err := weaver.Open(weaver.Config{Gatekeepers: 3, Shards: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	// Fig 1's topology: n1..n7, with (n3,n5) up and (n5,n7) down.
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		for i := 1; i <= 7; i++ {
			tx.CreateVertex(weaver.VertexID(fmt.Sprintf("n%d", i)))
		}
		tx.CreateEdge("n1", "n2")
		tx.CreateEdge("n1", "n3")
		tx.CreateEdge("n2", "n4")
		tx.CreateEdge("n3", "n5")
		tx.CreateEdge("n5", "n6")
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	edgeID := func(from weaver.VertexID, to weaver.VertexID) (weaver.EdgeID, bool) {
		v, ok, err := cl.GetVertex(from)
		if err != nil || !ok {
			return "", false
		}
		for _, e := range v.Edges {
			if e.To == to {
				return e.ID, true
			}
		}
		return "", false
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := c.Client()
		up := false // (n5,n7) currently down
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !up {
				// Atomic link flap: (n3,n5) down, (n5,n7) up.
				old, ok := edgeID("n3", "n5")
				if !ok {
					continue
				}
				if _, err := w.RunTx(func(tx *weaver.Tx) error {
					tx.DeleteEdge("n3", old)
					tx.CreateEdge("n5", "n7")
					return nil
				}); err == nil {
					up = true
				}
			} else {
				old, ok := edgeID("n5", "n7")
				if !ok {
					continue
				}
				if _, err := w.RunTx(func(tx *weaver.Tx) error {
					tx.CreateEdge("n3", "n5")
					tx.DeleteEdge("n5", old)
					return nil
				}); err == nil {
					up = false
				}
			}
		}
	}()

	// Path discovery under churn: n7 must never be reachable from n1,
	// because no consistent topology snapshot contains both links.
	phantoms := 0
	const queries = 300
	for i := 0; i < queries; i++ {
		ok, err := cl.Reachable("n1", "n7")
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			phantoms++
		}
	}
	close(stop)
	wg.Wait()

	if phantoms > 0 {
		log.Fatalf("observed %d phantom paths — strict serializability violated!", phantoms)
	}
	fmt.Printf("%d concurrent path queries, 0 phantom paths n1→n7 ✓\n", queries)
	fmt.Println("(every query saw either (n3,n5) or (n5,n7), never both)")
}
