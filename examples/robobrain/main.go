// RoboBrain example (§5.3): a knowledge graph on Weaver. Concepts are
// vertices, labeled relationships are edges. New, possibly noisy knowledge
// is merged into existing concepts transactionally — a concept split or
// merge is atomic, so subgraph queries (node programs) never observe a
// half-merged network.
package main

import (
	"fmt"
	"log"

	"weaver"
)

func main() {
	c, err := weaver.Open(weaver.Config{Gatekeepers: 2, Shards: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	// Seed the semantic network.
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		for _, concept := range []weaver.VertexID{
			"concept/mug", "concept/coffee", "concept/kitchen",
			"concept/grasp", "concept/pour",
		} {
			tx.CreateVertex(concept)
			tx.SetProperty(concept, "source", "seed")
		}
		rel := func(from, to weaver.VertexID, label string) {
			e := tx.CreateEdge(from, to)
			tx.SetEdgeProperty(from, e, "rel", label)
		}
		rel("concept/mug", "concept/coffee", "holds")
		rel("concept/mug", "concept/kitchen", "found_in")
		rel("concept/grasp", "concept/mug", "applies_to")
		rel("concept/pour", "concept/coffee", "applies_to")
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// A robot observes a new concept "cup" that turns out to be the same
	// as "mug": merge it atomically — re-point its relations onto mug and
	// delete the duplicate in one transaction.
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.CreateVertex("concept/cup")
		e := tx.CreateEdge("concept/cup", "concept/kitchen")
		tx.SetEdgeProperty("concept/cup", e, "rel", "found_in")
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		// Merge: read cup's relations, copy them to mug, delete cup.
		cup, ok, err := tx.GetVertex("concept/cup")
		if err != nil || !ok {
			return fmt.Errorf("cup vanished: %w", err)
		}
		for _, e := range cup.Edges {
			ne := tx.CreateEdge("concept/mug", e.To)
			for k, v := range e.Props {
				tx.SetEdgeProperty("concept/mug", ne, k, v)
			}
		}
		tx.DeleteVertex("concept/cup")
		tx.SetProperty("concept/mug", "aliases", "cup")
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("merged concept/cup into concept/mug atomically")

	// Subgraph query: what applies to things found in the kitchen?
	mug, _, err := cl.GetNode("concept/mug")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mug: %v (degree %d, aliases=%q)\n", mug.ID, mug.NumEdges, mug.Props["aliases"])

	reachable, _, err := cl.Traverse("concept/grasp", "", "", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge reachable from concept/grasp: %v\n", reachable)

	if ok, _ := cl.Reachable("concept/grasp", "concept/kitchen"); ok {
		fmt.Println("grasp transitively relates to kitchen ✓")
	}
}
