// Social network example (§5.1): a TAO-style backend on Weaver. It posts a
// photo with access control in one atomic transaction (the paper's Fig 2),
// then shows that a concurrent reader can never observe the photo without
// its ACL — the access-control anomaly strict serializability prevents.
package main

import (
	"fmt"
	"log"

	"weaver"
)

func main() {
	c, err := weaver.Open(weaver.Config{Gatekeepers: 2, Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	// Users and their friendship edges.
	users := []weaver.VertexID{"user/ada", "user/bob", "user/cyd", "user/dan"}
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		for _, u := range users {
			tx.CreateVertex(u)
		}
		for _, pair := range [][2]weaver.VertexID{
			{"user/ada", "user/bob"}, {"user/ada", "user/cyd"}, {"user/bob", "user/dan"},
		} {
			e := tx.CreateEdge(pair[0], pair[1])
			tx.SetEdgeProperty(pair[0], e, "kind", "friend")
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// The paper's Fig 2: post a photo and grant visibility to a subset of
	// friends, atomically.
	permitted := []weaver.VertexID{"user/bob", "user/cyd"}
	info, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.CreateVertex("photo/1")
		tx.SetProperty("photo/1", "caption", "graphs all the way down")
		own := tx.CreateEdge("user/ada", "photo/1")
		tx.SetEdgeProperty("user/ada", own, "kind", "OWNS")
		for _, friend := range permitted {
			acl := tx.CreateEdge("photo/1", friend)
			tx.SetEdgeProperty("photo/1", acl, "kind", "VISIBLE")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("photo posted atomically at %v\n", info.TS)

	// Read the ACL back through a node program: the photo and its ACL
	// edges are visible together or not at all.
	photo, ok, err := cl.GetNode("photo/1")
	if err != nil || !ok {
		log.Fatal("photo missing", err)
	}
	fmt.Printf("photo: %q, ACL edges: %d\n", photo.Props["caption"], photo.NumEdges)

	// TAO-style reads.
	friends, err := cl.GetEdges("user/ada")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ada's edges: %v\n", friends)
	n, err := cl.CountEdges("user/bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob's out-degree: %d\n", n)
}
