// Social network example (§5.1): a TAO-style backend on Weaver. It posts a
// photo with access control in one atomic transaction (the paper's Fig 2),
// shows that a concurrent reader can never observe the photo without its
// ACL, and then uses SECONDARY INDEXES (weaver.Config.Indexes) instead of a
// hand-maintained ID registry: find-users-by-city via Lookup, and a
// traversal whose start set is an index selector (RunProgramWhere) — the
// lookup and the traversal read one consistent snapshot.
package main

import (
	"fmt"
	"log"

	"weaver"
	"weaver/internal/nodeprog"
)

func main() {
	c, err := weaver.Open(weaver.Config{
		Gatekeepers: 2,
		Shards:      4,
		// Index users by home city: no application-side ID lists needed
		// to answer "everyone in Ithaca".
		Indexes: []weaver.IndexSpec{{Key: "city"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	// Users with their home city and friendship edges.
	users := map[weaver.VertexID]string{
		"user/ada": "ithaca", "user/bob": "ithaca",
		"user/cyd": "nyc", "user/dan": "ithaca",
	}
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		for u, city := range users {
			tx.CreateVertex(u)
			tx.SetProperty(u, "city", city)
		}
		for _, pair := range [][2]weaver.VertexID{
			{"user/ada", "user/bob"}, {"user/ada", "user/cyd"}, {"user/bob", "user/dan"},
		} {
			e := tx.CreateEdge(pair[0], pair[1])
			tx.SetEdgeProperty(pair[0], e, "kind", "friend")
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// The paper's Fig 2: post a photo and grant visibility to a subset of
	// friends, atomically.
	permitted := []weaver.VertexID{"user/bob", "user/cyd"}
	info, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.CreateVertex("photo/1")
		tx.SetProperty("photo/1", "caption", "graphs all the way down")
		own := tx.CreateEdge("user/ada", "photo/1")
		tx.SetEdgeProperty("user/ada", own, "kind", "OWNS")
		for _, friend := range permitted {
			acl := tx.CreateEdge("photo/1", friend)
			tx.SetEdgeProperty("photo/1", acl, "kind", "VISIBLE")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("photo posted atomically at %v\n", info.TS)

	// Read the ACL back through a node program: the photo and its ACL
	// edges are visible together or not at all.
	photo, ok, err := cl.GetNode("photo/1")
	if err != nil || !ok {
		log.Fatal("photo missing ", err)
	}
	fmt.Printf("photo: %q, ACL edges: %d\n", photo.Props["caption"], photo.NumEdges)

	// Secondary index, equality: every user in Ithaca — a strictly
	// serializable snapshot lookup, no application-side registry.
	ithacans, _, err := cl.Lookup("city", "ithaca")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users in ithaca: %v\n", ithacans)

	// Index + node-program composition: traverse friend edges starting
	// from EVERY Ithaca user, start set and traversal at one snapshot.
	params := nodeprog.Encode(nodeprog.TraverseParams{PropKey: "kind", PropValue: "friend"})
	res, _, err := cl.RunProgramWhere("traverse", params, "city", "ithaca")
	if err != nil {
		log.Fatal(err)
	}
	reach := map[weaver.VertexID]bool{}
	for _, r := range res {
		var v weaver.VertexID
		if err := nodeprog.Decode(r, &v); err != nil {
			log.Fatal(err)
		}
		reach[v] = true
	}
	fmt.Printf("reachable over friend edges from ithaca: %d users\n", len(reach))

	// Historical lookup: pin a snapshot, move Ada, and ask the past.
	snap, err := c.SnapshotTS()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.SetProperty("user/ada", "city", "nyc")
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	then, err := cl.At(snap.TS()).Lookup("city", "ithaca")
	if err != nil {
		log.Fatal(err)
	}
	now, _, err := cl.Lookup("city", "ithaca")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ithaca then: %v\nithaca now:  %v\n", then, now)
}
