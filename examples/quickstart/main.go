// Quickstart: open an in-process Weaver cluster, commit a transaction,
// read it back with node programs, and run a BFS traversal.
package main

import (
	"fmt"
	"log"

	"weaver"
)

func main() {
	// Two gatekeepers, two shards, all in this process.
	c, err := weaver.Open(weaver.Config{Gatekeepers: 2, Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	// One strictly serializable transaction: create a tiny follows-graph.
	info, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.CreateVertex("alice")
		tx.SetProperty("alice", "name", "Alice")
		tx.CreateVertex("bob")
		tx.CreateVertex("carol")
		e1 := tx.CreateEdge("alice", "bob")
		tx.SetEdgeProperty("alice", e1, "kind", "follows")
		e2 := tx.CreateEdge("bob", "carol")
		tx.SetEdgeProperty("bob", e2, "kind", "follows")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed at timestamp %v\n", info.TS)

	// Vertex-local reads run as node programs on a consistent snapshot.
	node, _, err := cl.GetNode("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice: props=%v out-degree=%d\n", node.Props, node.NumEdges)

	// A BFS traversal along "kind=follows" edges (the paper's Fig 3).
	ids, ts, err := cl.Traverse("alice", "kind", "follows", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reachable from alice at %v: %v\n", ts, ids)

	// Shortest path.
	dist, ok, err := cl.ShortestPath("alice", "carol")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice → carol: dist=%d found=%v\n", dist, ok)
}
