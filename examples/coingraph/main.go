// CoinGraph example (§5.2): a blockchain explorer on Weaver. Loads a
// synthetic Bitcoin-style chain, renders blocks with the block_render node
// program, and — the time-travel headline — AUDITS ADDRESS BALANCES AS OF
// A PAST BLOCK while new blocks keep committing: the paper's CoinGraph
// audit scenario, enabled by pinned snapshot timestamps over the
// multi-version graph (Cluster.SnapshotTS, Client.At).
package main

import (
	"fmt"
	"log"
	"strconv"

	"weaver"
	"weaver/internal/nodeprog"
	"weaver/internal/workload"
)

// loadBlock commits one block as a single Weaver transaction, maintaining
// a running "recv" (outputs received) counter on every paid address — the
// balance an auditor asks about. recv mirrors the counters client-side so
// the closure stays idempotent under commit retry.
func loadBlock(cl *weaver.Client, bv workload.BlockVertex, recv map[weaver.VertexID]int) error {
	fresh := map[weaver.VertexID]bool{}
	paid := map[weaver.VertexID]int{}
	for _, tv := range bv.Txs {
		for _, out := range tv.Outputs {
			if _, seen := recv[out]; !seen {
				fresh[out] = true
			}
			paid[out]++
		}
	}
	_, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.CreateVertex(bv.Block)
		if bv.Prev != "" {
			e := tx.CreateEdge(bv.Block, bv.Prev)
			tx.SetEdgeProperty(bv.Block, e, "kind", "prev")
		}
		for a := range fresh {
			tx.CreateVertex(a)
		}
		for _, tv := range bv.Txs {
			tx.CreateVertex(tv.Tx)
			be := tx.CreateEdge(bv.Block, tv.Tx)
			tx.SetEdgeProperty(bv.Block, be, "kind", "tx")
			for _, in := range tv.Inputs {
				ie := tx.CreateEdge(tv.Tx, in)
				tx.SetEdgeProperty(tv.Tx, ie, "kind", "in")
			}
			for _, out := range tv.Outputs {
				oe := tx.CreateEdge(tv.Tx, out)
				tx.SetEdgeProperty(tv.Tx, oe, "kind", "out")
			}
		}
		for a, n := range paid {
			tx.SetProperty(a, "recv", strconv.Itoa(recv[a]+n))
		}
		return nil
	})
	if err != nil {
		return err
	}
	for a, n := range paid {
		recv[a] += n
	}
	return nil
}

func main() {
	c, err := weaver.Open(weaver.Config{Gatekeepers: 2, Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	// Generate a 120-block synthetic chain (blocks grow with height as in
	// Bitcoin's history) and commit the first 80 transactionally.
	const auditHeight = 80
	bc := workload.NewBlockchain(120, 7)
	var blocks []workload.BlockVertex
	bc.Generate(func(bv workload.BlockVertex) { blocks = append(blocks, bv) })
	recv := map[weaver.VertexID]int{}
	for _, bv := range blocks[:auditHeight] {
		if err := loadBlock(cl, bv, recv); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("committed blocks 0..%d (%d addresses seen)\n", auditHeight-1, len(recv))

	// Pin the audit point: "the chain as of block 79". Everything the
	// auditor reads through this snapshot is frozen here, held against
	// version GC until Close, while new blocks commit freely.
	snap, err := c.SnapshotTS()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	// Record what the auditor should find: the busiest address as of the
	// audit point that keeps receiving afterwards, so the live balance
	// visibly diverges from the audited one.
	later := map[weaver.VertexID]int{}
	for _, bv := range blocks[auditHeight:] {
		for _, tv := range bv.Txs {
			for _, out := range tv.Outputs {
				later[out]++
			}
		}
	}
	auditAddr, auditRecv := weaver.VertexID(""), -1
	for a, n := range recv {
		if later[a] > 0 && (n > auditRecv || (n == auditRecv && a < auditAddr)) {
			auditAddr, auditRecv = a, n
		}
	}

	// New blocks keep arriving while the audit runs.
	done := make(chan error, 1)
	go func() {
		loader := c.Client()
		for _, bv := range blocks[auditHeight:] {
			if err := loadBlock(loader, bv, recv); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// The audit: balance of the busiest address as of block 79, read
	// through the pinned snapshot while the chain grows underneath it.
	auditor := c.Client().At(snap.TS())
	for i := 0; i < 3; i++ {
		d, ok, err := auditor.GetNode(auditAddr)
		if err != nil || !ok {
			log.Fatalf("audit read %d of %s: ok=%v err=%v", i, auditAddr, ok, err)
		}
		if d.Props["recv"] != strconv.Itoa(auditRecv) {
			log.Fatalf("audit drifted: %s recv=%q as of block %d, expected %d",
				auditAddr, d.Props["recv"], auditHeight-1, auditRecv)
		}
		fmt.Printf("audit as of block %d: %s received %s outputs (stable read %d)\n",
			auditHeight-1, auditAddr, d.Props["recv"], i+1)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	// Chain fully committed: the live read has moved on, the audit has not.
	live, ok, err := cl.GetNode(auditAddr)
	if err != nil || !ok {
		log.Fatalf("live read of %s: ok=%v err=%v", auditAddr, ok, err)
	}
	frozen, _, err := auditor.GetNode(auditAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d blocks: live recv=%s, audited-as-of-block-%d recv=%s\n",
		bc.Blocks, live.Props["recv"], auditHeight-1, frozen.Props["recv"])

	// Blocks after the audit point do not exist at the snapshot.
	if out, err := auditor.RunProgram("block_render", nil, workload.BlockID(auditHeight+10)); err != nil {
		log.Fatal(err)
	} else if len(out) != 0 {
		log.Fatalf("block %d visible at snapshot taken at block %d", auditHeight+10, auditHeight-1)
	}
	fmt.Printf("block %d: not yet mined as of the snapshot\n", auditHeight+10)

	// The explorer still works live: render a recent block…
	height := bc.Blocks - 10
	out, _, err := cl.RunProgram("block_render", nil, workload.BlockID(height))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block %d holds %d transactions:\n", height, len(out))
	for i, raw := range out {
		if i >= 3 {
			fmt.Printf("  … and %d more\n", len(out)-3)
			break
		}
		var tx nodeprog.BlockTxData
		if err := nodeprog.Decode(raw, &tx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d inputs, %d outputs\n", tx.Tx, len(tx.Inputs), len(tx.Outputs))
	}

	// …trace taint one hop from tx/0, and walk the chain back from the tip.
	ids, _, err := cl.Traverse(workload.TxID(0), "kind", "out", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tx/0 paid %d outputs: %v\n", len(ids)-1, ids[1:])
	tip := workload.BlockID(bc.Blocks - 1)
	chain, _, err := cl.Traverse(tip, "kind", "prev", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("last blocks from tip: %v\n", chain)
}
