// CoinGraph example (§5.2): a blockchain explorer on Weaver. Loads a
// synthetic Bitcoin-style chain, renders blocks with the block_render node
// program, and runs a taint-tracking traversal from one transaction
// through the spend graph — the kind of flow analysis the paper built
// CoinGraph for.
package main

import (
	"fmt"
	"log"

	"weaver"
	"weaver/internal/experiments"
	"weaver/internal/nodeprog"
	"weaver/internal/workload"
)

func main() {
	c, err := weaver.Open(weaver.Config{Gatekeepers: 2, Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cl := c.Client()

	// Load a 150-block synthetic chain (blocks grow with height as in
	// Bitcoin's history).
	bc := workload.NewBlockchain(150, 7)
	if err := experiments.LoadBlockchainWeaver(c, bc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d blocks, %d transactions, %d addresses\n", bc.Blocks, bc.Txs, bc.Addresses)

	// Render a block: block vertex → its transactions → inputs/outputs.
	const height = 140
	out, _, err := cl.RunProgram("block_render", nil, workload.BlockID(height))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block %d holds %d transactions:\n", height, len(out))
	for i, raw := range out {
		if i >= 3 {
			fmt.Printf("  … and %d more\n", len(out)-3)
			break
		}
		var tx nodeprog.BlockTxData
		if err := nodeprog.Decode(raw, &tx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d inputs, %d outputs\n", tx.Tx, len(tx.Inputs), len(tx.Outputs))
	}

	// Taint tracking: which transactions and addresses are downstream of
	// tx/0? Inputs point backwards (tx → the tx it spends), so taint
	// flows along in-edges in reverse; here we walk forward along "out"
	// edges to addresses and use reachability over the spend graph.
	ids, _, err := cl.Traverse(workload.TxID(0), "kind", "out", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tx/0 paid %d outputs: %v\n", len(ids)-1, ids[1:])

	// Follow the chain backwards from the tip via prev links.
	tip := workload.BlockID(bc.Blocks - 1)
	chain, _, err := cl.Traverse(tip, "kind", "prev", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("last blocks from tip: %v\n", chain)
}
