// Strict-serializability stress suite: N concurrent clients run randomized
// read-modify-write transactions against a multi-gatekeeper, multi-shard
// cluster, and a checker validates the committed history against a
// sequential model. It runs with the shard apply path both serial and
// parallel (conflict-aware batches on a worker pool), since the parallel
// path is exactly where an ordering bug would corrupt the multi-version
// graph.
//
// Workload model: M register vertices each hold an integer property "n".
// Every transaction reads one or two registers (recording the OCC read
// version) and writes back value+1. For this workload strict
// serializability is checkable:
//
//   - per register, the multiset of values read by committed increments
//     must be exactly {0, 1, ..., c-1} — each increment observed a unique
//     predecessor state, giving a total order per register;
//   - the union of those per-register total orders must be acyclic
//     (serializability: some single-threaded execution explains every
//     read);
//   - the data order must respect real time (strictness): a transaction
//     serialized before another must not have begun only after the other
//     completed;
//   - after an apply fence (Cluster.Quiesce), the shard-side multi-version
//     graph read through the full ordering machinery (node programs) must
//     agree with the sequential model's final state, as must the backing
//     store.
package weaver_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"weaver"
	"weaver/internal/workload"
)

type stressTx struct {
	id    int
	begin time.Time
	end   time.Time
	reads map[weaver.VertexID]int // value observed per incremented register
}

func runSerializabilityStress(t *testing.T, shardWorkers int) {
	t.Helper()
	runStressAndVerify(t, weaver.Config{
		Gatekeepers:    3,
		Shards:         3,
		AnnouncePeriod: 200 * time.Microsecond,
		NopPeriod:      100 * time.Microsecond,
		ShardWorkers:   shardWorkers,
	}, nil)
}

// chaosFn runs alongside the stress workload (background repartitioning,
// concurrent readers, ...) until stop closes; failures go to errCh. The
// workload waits for ready() before starting — chaos calls it once its
// disruption is demonstrably under way, so a starved goroutine on a loaded
// single-core runner cannot reduce the test to a chaos-free run. seed is
// the suite seed (workload.TestSeed): all chaos randomness must derive
// from it so a failure replays exactly.
type chaosFn func(c *weaver.Cluster, regs []weaver.VertexID, seed int64, ready func(), stop <-chan struct{}, errCh chan<- error)

func runStressAndVerify(t *testing.T, cfg weaver.Config, chaos chaosFn) {
	t.Helper()
	const (
		registers = 24
		clients   = 6
	)
	txPerClient := 100
	if testing.Short() {
		txPerClient = 30
	}
	// One suite seed drives every source of randomness below (per-client
	// generators, chaos goroutines); WEAVER_TEST_SEED replays a failure
	// exactly.
	seed := workload.TestSeed(t)

	c, err := weaver.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reg := func(i int) weaver.VertexID { return weaver.VertexID(fmt.Sprintf("r%d", i)) }

	setup := c.Client()
	if _, err := setup.RunTx(func(tx *weaver.Tx) error {
		for i := 0; i < registers; i++ {
			tx.CreateVertex(reg(i))
			tx.SetProperty(reg(i), "n", "0")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var (
		mu      sync.Mutex
		history []stressTx
		nextID  int
	)
	chaosStop := make(chan struct{})
	chaosDone := make(chan struct{})
	chaosErr := make(chan error, 16)
	if chaos != nil {
		regs := make([]weaver.VertexID, registers)
		for i := range regs {
			regs[i] = reg(i)
		}
		var readyOnce sync.Once
		chaosReady := make(chan struct{})
		ready := func() { readyOnce.Do(func() { close(chaosReady) }) }
		go func() {
			defer close(chaosDone)
			chaos(c, regs, seed, ready, chaosStop, chaosErr)
		}()
		select {
		case <-chaosReady:
		case <-chaosDone: // chaos bailed before becoming ready; its error surfaces below
		}
	} else {
		close(chaosDone)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			client := c.Client()
			// Each goroutine derives its own generator from the suite
			// seed: sharing one rand.Rand across goroutines would make
			// interleavings (and thus replays) nondeterministic.
			r := rand.New(rand.NewSource(seed + int64(cl+1)))
			for op := 0; op < txPerClient; op++ {
				vs := []weaver.VertexID{reg(r.Intn(registers))}
				if r.Intn(2) == 0 {
					for {
						v := reg(r.Intn(registers))
						if v != vs[0] {
							vs = append(vs, v)
							break
						}
					}
				}
				begin := time.Now()
				var reads map[weaver.VertexID]int
				for attempt := 0; ; attempt++ {
					if attempt > 400 {
						errCh <- fmt.Errorf("client %d: tx starved after %d attempts", cl, attempt)
						return
					}
					tx := client.Begin()
					reads = make(map[weaver.VertexID]int, len(vs))
					for _, v := range vs {
						d, found, err := tx.GetVertex(v)
						if err != nil || !found {
							errCh <- fmt.Errorf("read %q: found=%v err=%v", v, found, err)
							return
						}
						n, err := strconv.Atoi(d.Props["n"])
						if err != nil {
							errCh <- fmt.Errorf("register %q holds %q: %v", v, d.Props["n"], err)
							return
						}
						reads[v] = n
					}
					for _, v := range vs {
						tx.SetProperty(v, "n", strconv.Itoa(reads[v]+1))
					}
					if _, err := tx.Commit(); err == nil {
						break
					} else if !errors.Is(err, weaver.ErrConflict) {
						errCh <- fmt.Errorf("commit: %v", err)
						return
					}
					time.Sleep(time.Duration(r.Intn(200)) * time.Microsecond)
				}
				end := time.Now()
				mu.Lock()
				history = append(history, stressTx{id: nextID, begin: begin, end: end, reads: reads})
				nextID++
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	close(chaosStop)
	<-chaosDone
	close(chaosErr)
	for err := range chaosErr {
		t.Fatal(err)
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// ---- Checker ----

	// Per-register total orders from the values each increment observed.
	type slot struct {
		tx   int
		read int
	}
	perReg := make(map[weaver.VertexID][]slot)
	for _, h := range history {
		for v, n := range h.reads {
			perReg[v] = append(perReg[v], slot{tx: h.id, read: n})
		}
	}
	increments := make(map[weaver.VertexID]int)
	succ := make(map[int][]int) // serialization edges tx -> tx
	for v, slots := range perReg {
		increments[v] = len(slots)
		seen := make(map[int]int, len(slots))
		for _, s := range slots {
			if prev, dup := seen[s.read]; dup {
				t.Fatalf("register %q: txs %d and %d both read value %d (lost update)", v, prev, s.tx, s.read)
			}
			seen[s.read] = s.tx
		}
		for n := 0; n < len(slots); n++ {
			if _, ok := seen[n]; !ok {
				t.Fatalf("register %q: no committed tx read value %d of %d (gap in increment chain)", v, n, len(slots))
			}
		}
		// Real-time check on every ordered pair of this register's chain:
		// if Ti is serialized before Tj, Tj must not have fully completed
		// before Ti began.
		for i := 0; i < len(slots); i++ {
			for j := 0; j < len(slots); j++ {
				if slots[i].read < slots[j].read {
					ti, tj := history[slots[i].tx], history[slots[j].tx]
					if tj.end.Before(ti.begin) {
						t.Fatalf("register %q: tx %d serialized before tx %d but began after it completed (real-time violation)",
							v, ti.id, tj.id)
					}
				}
			}
		}
		for n := 1; n < len(slots); n++ {
			succ[seen[n-1]] = append(succ[seen[n-1]], seen[n])
		}
	}

	// Serializability: the union of per-register orders must be acyclic.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int]int, len(history))
	var dfs func(int) bool
	dfs = func(tx int) bool {
		color[tx] = grey
		for _, nxt := range succ[tx] {
			switch color[nxt] {
			case grey:
				return false
			case white:
				if !dfs(nxt) {
					return false
				}
			}
		}
		color[tx] = black
		return true
	}
	for _, h := range history {
		if color[h.id] == white && !dfs(h.id) {
			t.Fatalf("serialization graph has a cycle: committed history is not serializable")
		}
	}

	// Apply fence, then compare shard state (through the full node-program
	// ordering machinery) and the backing store against the model.
	if err := c.Quiesce(10 * time.Second); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	for _, st := range c.Stats().Gatekeepers {
		if st.ApplyPending != 0 {
			t.Fatalf("apply fence passed with pending applies: %+v", st)
		}
	}
	reader := c.Client()
	for i := 0; i < registers; i++ {
		want := strconv.Itoa(increments[reg(i)])
		node, ok, err := reader.GetNode(reg(i))
		if err != nil || !ok {
			t.Fatalf("get_node %q: ok=%v err=%v", reg(i), ok, err)
		}
		if node.Props["n"] != want {
			t.Fatalf("register %q: shard graph holds n=%q, sequential model says %q", reg(i), node.Props["n"], want)
		}
		rec, ok, err := reader.GetVertex(reg(i))
		if err != nil || !ok {
			t.Fatalf("backing read %q: ok=%v err=%v", reg(i), ok, err)
		}
		if rec.Props["n"] != want {
			t.Fatalf("register %q: backing store holds n=%q, want %q", reg(i), rec.Props["n"], want)
		}
	}

	// The parallel path must actually have batched something when enabled.
	if cfg.ShardWorkers > 1 {
		var maxBatch uint64
		for _, st := range c.Stats().Shards {
			if st.MaxBatchTx > maxBatch {
				maxBatch = st.MaxBatchTx
			}
		}
		if maxBatch < 2 {
			t.Logf("note: no multi-transaction batch formed (max=%d); workload may be too conflict-heavy", maxBatch)
		}
	}
}

func TestStrictSerializabilitySerialApply(t *testing.T) {
	runSerializabilityStress(t, 0)
}

func TestStrictSerializabilityParallelApply(t *testing.T) {
	runSerializabilityStress(t, 8)
}

// TestStrictSerializabilityUnderMigration runs the full stress workload
// while a background migrator batch-moves the very registers under
// contention between shards (§4.6 online repartitioning) and a concurrent
// reader hammers them through the node-program path. Strict
// serializability must hold across every handoff, and no read may be lost:
// a register must never appear missing while its record changes homes.
func TestStrictSerializabilityUnderMigration(t *testing.T) {
	cfg := weaver.Config{
		Gatekeepers:    2,
		Shards:         3,
		AnnouncePeriod: 200 * time.Microsecond,
		NopPeriod:      100 * time.Microsecond,
		ShardWorkers:   4,
		Directory:      weaver.NewMappedDirectory(3),
	}
	shards := cfg.Shards
	runStressAndVerify(t, cfg, func(c *weaver.Cluster, regs []weaver.VertexID, seed int64, ready func(), stop <-chan struct{}, errCh chan<- error) {
		var wg sync.WaitGroup
		// Migrator: rotate a sliding window of registers to the next
		// shard, one batched pause per window. The workload starts only
		// after the first batch lands (ready), guaranteeing writes and
		// reads really do overlap ongoing migrations.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ready()
			const window = 8
			for i := 0; ; i++ {
				if i > 0 {
					select {
					case <-stop:
						return
					default:
					}
					time.Sleep(2 * time.Millisecond)
				}
				moves := make([]weaver.Move, 0, window)
				for j := 0; j < window; j++ {
					v := regs[(i*window+j)%len(regs)]
					moves = append(moves, weaver.Move{
						Vertex: v,
						Target: (c.Directory().Lookup(v) + 1) % shards,
					})
				}
				if _, err := c.MigrateBatch(moves); err != nil {
					errCh <- fmt.Errorf("migrate batch %d: %w", i, err)
					return
				}
				if i == 0 {
					ready()
				}
			}
		}()
		// Reader: a register mid-migration must stay continuously
		// readable through the full ordering machinery.
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := c.Client()
			r := rand.New(rand.NewSource(seed ^ 0x7265616465723939)) // distinct stream for the reader
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := regs[r.Intn(len(regs))]
				d, ok, err := cl.GetNode(v)
				if err != nil || !ok {
					errCh <- fmt.Errorf("read %d of %q lost during handoff: ok=%v err=%v", i, v, ok, err)
					return
				}
				if _, perr := strconv.Atoi(d.Props["n"]); perr != nil {
					errCh <- fmt.Errorf("register %q holds %q mid-migration: %v", v, d.Props["n"], perr)
					return
				}
			}
		}()
		wg.Wait()
		// The migrator must have actually exercised handoffs.
		if st := c.Stats().Rebalance; st.MovesTotal == 0 {
			errCh <- fmt.Errorf("migration chaos moved nothing: %+v", st)
		}
	})
}

// TestParallelShardStopIdempotent guards the worker-pool lifecycle:
// CrashShard (failure injection) followed by Close stops the same shard
// twice, which must not double-close the pool's job channel.
func TestParallelShardStopIdempotent(t *testing.T) {
	c, err := weaver.Open(weaver.Config{Gatekeepers: 1, Shards: 2, ShardWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	if _, err := cl.RunTx(func(tx *weaver.Tx) error {
		tx.CreateVertex("v")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.CrashShard(0)
	if err := c.Close(); err != nil {
		t.Fatalf("close after crash: %v", err)
	}
}
