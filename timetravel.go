package weaver

// Time-travel reads (§4.5). Because every write is multi-versioned under a
// refinable timestamp, any read-only query — including node programs — can
// run against the graph as it stood at a past timestamp while writes
// proceed untouched. Three pieces expose it:
//
//   - Cluster.SnapshotTS mints a PINNED snapshot timestamp: the GC
//     watermark cannot advance past it until Close, so reads at it stay
//     answerable indefinitely, regardless of Config.HistoryRetention.
//   - Client.At wraps any timestamp from this cluster (a commit's TS, a
//     Client.Snapshot, a pinned snapshot) in a ReadClient whose queries
//     all execute at that timestamp.
//   - Config.HistoryRetention keeps versions readable for a wall-clock
//     window even without a pin; reads behind the watermark fail with
//     ErrStaleSnapshot, never wrong data.
//
// Migration moves a vertex's full version history with it (see
// migrate.go), so pinned reads keep answering across rebalancing. Shard
// recovery and demand paging, by contrast, truncate resident history to
// the last committed record; reads older than a crash-recovery or a
// page-out/in cycle of the touched vertices are best-effort.

import (
	"errors"
	"sync"

	"weaver/internal/gatekeeper"
	"weaver/internal/nodeprog"
)

// ErrStaleSnapshot is returned by historical reads whose timestamp has
// fallen behind the GC watermark: the versions the query would need may
// already be collected, so shards refuse to answer rather than return
// wrong data. Reads within Config.HistoryRetention and reads at pinned
// snapshots (Cluster.SnapshotTS) never hit this. Match with errors.Is.
var ErrStaleSnapshot = gatekeeper.ErrStaleSnapshot

// Snapshot is a pinned point-in-time handle over the graph: a refinable
// timestamp strictly after every transaction committed through its minting
// gatekeeper, held against garbage collection until Close. Safe for
// concurrent use.
type Snapshot struct {
	c    *Cluster
	gk   int
	ts   Timestamp
	once sync.Once
}

// SnapshotTS mints and pins a snapshot timestamp (§4.5): any number of
// historical queries, concurrent with ongoing writes and with each other,
// can read the graph as of this timestamp via Client.At. The timestamp is
// STABLE cluster-wide, in both directions: every gatekeeper's clock is
// folded into the minting one first — so any transaction whose commit
// completed before this call, on any gatekeeper, orders before the
// snapshot — and the pinned timestamp is folded back into every other
// gatekeeper before returning — so any transaction whose commit begins
// after this call orders after it. Only commits racing the call itself
// remain timestamp-concurrent with the snapshot (visible under the §4.1
// write-before-read rule). The pin holds the cluster-wide GC watermark at
// the snapshot until Close releases it — long-lived snapshots therefore
// accumulate version history; close them when done.
func (c *Cluster) SnapshotTS() (*Snapshot, error) {
	if c.closed.Load() {
		return nil, errors.New("weaver: cluster closed")
	}
	n := c.nextClient.Add(1) - 1
	gk := int(n % uint64(c.cfg.Gatekeepers))
	minter := c.gkAt(gk)
	for i := 0; i < c.cfg.Gatekeepers; i++ {
		if i != gk {
			minter.ObserveTimestamp(c.gkAt(i).Now())
		}
	}
	ts := minter.PinSnapshot()
	for i := 0; i < c.cfg.Gatekeepers; i++ {
		if i != gk {
			c.gkAt(i).ObserveTimestamp(ts)
		}
	}
	return &Snapshot{c: c, gk: gk, ts: ts}, nil
}

// TS returns the pinned timestamp, usable with Client.At.
func (s *Snapshot) TS() Timestamp { return s.ts }

// Close releases the pin, letting the GC watermark advance past the
// snapshot. Idempotent. Reads at the timestamp may still succeed within
// Config.HistoryRetention, and fail with ErrStaleSnapshot after.
func (s *Snapshot) Close() error {
	s.once.Do(func() { s.c.gkAt(s.gk).Unpin(s.ts) })
	return nil
}

// ReadClient runs read-only queries against the graph state as of one
// fixed timestamp. Obtain one from Client.At. Like Client, a ReadClient is
// not safe for concurrent use; create one per goroutine (they are cheap —
// the snapshot timestamp itself can be shared freely).
type ReadClient struct {
	cl *Client
	ts Timestamp
}

// At returns a client whose reads and node programs all execute against
// the graph as of ts — a timestamp previously obtained from this cluster:
// a commit's CommitInfo.TS, Client.Snapshot, or a pinned
// Cluster.SnapshotTS. Queries fail with ErrStaleSnapshot once ts falls
// behind the GC watermark (impossible while pinned, guaranteed not to
// happen within Config.HistoryRetention of minting).
func (cl *Client) At(ts Timestamp) *ReadClient {
	return &ReadClient{cl: cl, ts: ts}
}

// TS returns the timestamp this client reads at.
func (r *ReadClient) TS() Timestamp { return r.ts }

// RunProgram launches a registered node program reading the graph as of
// the pinned timestamp (§4.5); the historical counterpart of
// Client.RunProgram.
func (r *ReadClient) RunProgram(name string, params []byte, start ...VertexID) ([][]byte, error) {
	return r.cl.gk().RunProgramAt(r.ts, name, params, start)
}

// GetNode reads one vertex as of the pinned timestamp through the full
// ordering machinery.
func (r *ReadClient) GetNode(id VertexID) (*nodeprog.NodeData, bool, error) {
	res, err := r.RunProgram("get_node", nil, id)
	if err != nil || len(res) == 0 {
		return nil, false, err
	}
	return decodeNodeData(res[0])
}

// GetEdges returns the vertex's out-neighbors as of the pinned timestamp.
func (r *ReadClient) GetEdges(id VertexID) ([]VertexID, error) {
	res, err := r.RunProgram("get_edges", nil, id)
	if err != nil || len(res) == 0 {
		return nil, err
	}
	d, ok, err := decodeNodeData(res[0])
	if err != nil || !ok {
		return nil, err
	}
	return d.EdgesTo, nil
}

// CountEdges returns the vertex's live out-degree as of the pinned
// timestamp.
func (r *ReadClient) CountEdges(id VertexID) (int, error) {
	res, err := r.RunProgram("count_edges", nil, id)
	if err != nil || len(res) == 0 {
		return 0, err
	}
	var n int
	err = nodeprog.Decode(res[0], &n)
	return n, err
}

// errZeroReadTS rejects historical reads at the zero timestamp: to the
// gatekeeper a zero read timestamp means "mint a fresh snapshot", so
// passing an uninitialized timestamp through would silently return
// CURRENT data to a caller who asked for the past.
var errZeroReadTS = errors.New("weaver: historical read at zero timestamp")

// Lookup returns every vertex whose indexed property key equaled value as
// of the pinned timestamp — the historical counterpart of Client.Lookup.
// The result is exactly what Lookup would have returned at that moment:
// postings are versioned like graph objects, survive migration, and are
// held against GC by pins and Config.HistoryRetention; behind the
// watermark the query fails with ErrStaleSnapshot, never wrong data.
func (r *ReadClient) Lookup(key, value string) ([]VertexID, error) {
	if r.ts.Zero() {
		return nil, errZeroReadTS
	}
	ids, _, err := r.cl.gk().Lookup(r.ts, key, value)
	return ids, err
}

// LookupRange is Lookup over the value interval [lo, hi] (lexicographic,
// inclusive; empty lo/hi = unbounded) as of the pinned timestamp.
func (r *ReadClient) LookupRange(key, lo, hi string) ([]VertexID, error) {
	if r.ts.Zero() {
		return nil, errZeroReadTS
	}
	ids, _, err := r.cl.gk().LookupRange(r.ts, key, lo, hi)
	return ids, err
}

// RunProgramWhere launches a node program starting at every vertex whose
// indexed property key equaled value as of the pinned timestamp; the
// lookup and the program read the same snapshot.
func (r *ReadClient) RunProgramWhere(name string, params []byte, key, value string) ([][]byte, error) {
	start, err := r.Lookup(key, value)
	if err != nil || len(start) == 0 {
		return nil, err
	}
	return r.RunProgram(name, params, start...)
}

// Traverse runs the Fig 3 BFS over the graph as of the pinned timestamp.
func (r *ReadClient) Traverse(start VertexID, propKey, propValue string, maxDepth int) ([]VertexID, error) {
	params := nodeprog.Encode(nodeprog.TraverseParams{PropKey: propKey, PropValue: propValue, MaxDepth: maxDepth})
	res, err := r.RunProgram("traverse", params, start)
	if err != nil {
		return nil, err
	}
	return decodeVertexList(res)
}

// decodeNodeData decodes one get_node/get_edges result.
func decodeNodeData(raw []byte) (*nodeprog.NodeData, bool, error) {
	var d nodeprog.NodeData
	if err := nodeprog.Decode(raw, &d); err != nil {
		return nil, false, err
	}
	return &d, true, nil
}

// decodeVertexList decodes per-visit VertexID results.
func decodeVertexList(res [][]byte) ([]VertexID, error) {
	out := make([]VertexID, 0, len(res))
	for _, r := range res {
		var v VertexID
		if err := nodeprog.Decode(r, &v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
